"""XMPP (RFC 6120): stream handshake, SASL feature advertisement, login.

The scan opens a stream on client port 5222 (or server port 5269) and reads
the ``<stream:features>`` stanza.  The misconfiguration indicators of Table 2
live in the SASL mechanism list: ``<mechanism>PLAIN</mechanism>`` without
mandatory STARTTLS means credentials cross in clear text ("No encryption"),
and ``<mechanism>ANONYMOUS</mechanism>`` means anyone can bind a session
("No auth" / anonymous login — 143,986 devices in Table 5).

The ThingPot honeypot emulates a Philips Hue bridge over XMPP; our attack
models log in anonymously and try to toggle lights, as Section 5.1.2
describes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.protocols.base import ProtocolId, ProtocolServer, ServerReply, Session

__all__ = [
    "stream_open",
    "stream_features",
    "parse_mechanisms",
    "offers_starttls",
    "XmppConfig",
    "XmppServer",
]

_STREAM_OPEN_TEMPLATE = (
    "<?xml version='1.0'?>"
    "<stream:stream from='{domain}' id='{stream_id}' version='1.0' "
    "xml:lang='en' xmlns='jabber:client' "
    "xmlns:stream='http://etherx.jabber.org/streams'>"
)


def stream_open(domain: str, stream_id: str) -> str:
    """Server-side stream header."""
    return _STREAM_OPEN_TEMPLATE.format(domain=domain, stream_id=stream_id)


def stream_features(mechanisms: List[str], starttls: bool, tls_required: bool) -> str:
    """Build the ``<stream:features>`` stanza a server advertises."""
    parts = ["<stream:features>"]
    if starttls:
        parts.append("<starttls xmlns='urn:ietf:params:xml:ns:xmpp-tls'>")
        if tls_required:
            parts.append("<required/>")
        parts.append("</starttls>")
    parts.append("<mechanisms xmlns='urn:ietf:params:xml:ns:xmpp-sasl'>")
    for mechanism in mechanisms:
        parts.append(f"<mechanism>{mechanism}</mechanism>")
    parts.append("</mechanisms></stream:features>")
    return "".join(parts)


_MECHANISM_RE = re.compile(r"<mechanism>([^<]+)</mechanism>")


def parse_mechanisms(features_xml: str) -> List[str]:
    """Extract SASL mechanisms from a features stanza."""
    return _MECHANISM_RE.findall(features_xml)


def offers_starttls(features_xml: str) -> bool:
    """True if the server advertises STARTTLS at all."""
    return "<starttls" in features_xml


@dataclass
class XmppConfig:
    """Server behaviour: domain, SASL posture, device backend."""

    domain: str = "xmpp.local"
    mechanisms: List[str] = field(default_factory=lambda: ["SCRAM-SHA-1"])
    starttls: bool = True
    tls_required: bool = True
    credentials: Dict[str, str] = field(default_factory=dict)
    #: Named device state an authenticated session may mutate (e.g. Hue
    #: lights); used by the write-privilege probing attacks.
    device_state: Dict[str, str] = field(default_factory=dict)


class XmppServer(ProtocolServer):
    """XMPP endpoint with SASL and a tiny IQ command surface."""

    protocol = ProtocolId.XMPP

    def __init__(self, config: XmppConfig) -> None:
        self.config = config
        self.state: Dict[str, str] = dict(config.device_state)
        self.poison_events = 0
        self._stream_counter = 0

    def banner(self) -> bytes:
        return b""  # client speaks first in XMPP

    def handle(self, request: bytes, session: Session) -> ServerReply:
        text = request.decode("utf-8", errors="replace")
        if session.state == "new":
            if "<stream:stream" not in text:
                return ServerReply(close=True)
            self._stream_counter += 1
            session.state = "features-sent"
            reply = stream_open(self.config.domain, f"s{self._stream_counter:08d}")
            reply += stream_features(
                self.config.mechanisms, self.config.starttls, self.config.tls_required
            )
            return ServerReply(reply.encode("utf-8"))
        if session.state == "features-sent":
            return self._auth(text, session)
        if session.state == "authenticated":
            return self._stanza(text, session)
        return ServerReply(close=True)

    def _auth(self, text: str, session: Session) -> ServerReply:
        failure = (
            b"<failure xmlns='urn:ietf:params:xml:ns:xmpp-sasl'>"
            b"<not-authorized/></failure>"
        )
        success = b"<success xmlns='urn:ietf:params:xml:ns:xmpp-sasl'/>"
        match = re.search(r"<auth[^>]*mechanism='([^']+)'[^>]*>([^<]*)</auth>", text)
        if not match:
            return ServerReply(failure, close=True)
        mechanism, payload = match.group(1), match.group(2)
        if mechanism not in self.config.mechanisms:
            return ServerReply(failure, close=True)
        if mechanism == "ANONYMOUS":
            session.state = "authenticated"
            session.username = "anonymous"
            return ServerReply(success)
        if mechanism == "PLAIN":
            # payload is authzid\0user\0pass (we accept unencoded for clarity)
            parts = payload.split("\x00")
            if len(parts) == 3:
                _, username, password = parts
                if self.config.credentials.get(username) == password:
                    session.state = "authenticated"
                    session.username = username
                    return ServerReply(success)
            return ServerReply(failure, close=True)
        # SCRAM flows are not brute-forceable in our model: reject.
        return ServerReply(failure, close=True)

    def _stanza(self, text: str, session: Session) -> ServerReply:
        """Handle authenticated IQ 'set'/'get' against device state."""
        set_match = re.search(r"<set\s+name='([^']+)'\s+value='([^']+)'", text)
        if set_match:
            name, value = set_match.group(1), set_match.group(2)
            if name in self.state and self.state[name] != value:
                self.poison_events += 1
            self.state[name] = value
            return ServerReply(b"<iq type='result'/>")
        get_match = re.search(r"<get\s+name='([^']+)'", text)
        if get_match:
            value = self.state.get(get_match.group(1), "")
            return ServerReply(
                f"<iq type='result'><value>{value}</value></iq>".encode("utf-8")
            )
        if "</stream:stream>" in text:
            return ServerReply(b"</stream:stream>", close=True)
        return ServerReply(b"<iq type='error'/>")
