"""Telnet protocol: IAC option negotiation and a session state machine.

Telnet (RFC 854) front-loads an option negotiation of ``IAC DO/WILL/WONT``
triples before any text flows.  Real devices differ in which options they
negotiate and in the login banner that follows — both are exactly what the
paper's scan uses: ZGrab records the negotiation bytes plus the first text,
and the misconfiguration classifier looks for shell prompts (``$``,
``root@xxx:~$``) that indicate consoles with no authentication, while the
honeypot fingerprinter matches known static negotiation+banner prefixes
(Table 6: ``\\xff\\xfd\\x1flogin:`` for Cowrie, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.protocols.base import ProtocolId, ProtocolServer, ServerReply, Session

__all__ = [
    "IAC",
    "DO",
    "DONT",
    "WILL",
    "WONT",
    "SB",
    "SE",
    "subnegotiate",
    "OPT_ECHO",
    "OPT_SUPPRESS_GO_AHEAD",
    "OPT_TERMINAL_TYPE",
    "OPT_WINDOW_SIZE",
    "OPT_LINEMODE",
    "negotiate",
    "strip_iac",
    "TelnetConfig",
    "TelnetServer",
]

IAC = 0xFF
DONT = 0xFE
DO = 0xFD
WONT = 0xFC
WILL = 0xFB
SB = 0xFA
SE = 0xF0

OPT_ECHO = 0x01
OPT_SUPPRESS_GO_AHEAD = 0x03
OPT_TERMINAL_TYPE = 0x18
OPT_WINDOW_SIZE = 0x1F
OPT_LINEMODE = 0x22


def negotiate(commands: Sequence[Tuple[int, int]]) -> bytes:
    """Encode a sequence of (command, option) pairs as IAC triples."""
    out = bytearray()
    for command, option in commands:
        out.extend((IAC, command, option))
    return bytes(out)


def subnegotiate(option: int, payload: bytes) -> bytes:
    """Encode an ``IAC SB <option> ... IAC SE`` subnegotiation block
    (terminal type, window size — RFC 855)."""
    return bytes([IAC, SB, option]) + payload + bytes([IAC, SE])


def strip_iac(data: bytes) -> bytes:
    """Remove IAC commands — triples, subnegotiation blocks, escapes —
    from a byte stream, leaving the text."""
    if IAC not in data:
        return data  # pure text: nothing to strip (the common case)
    out = bytearray()
    index = 0
    while index < len(data):
        byte = data[index]
        if byte != IAC:
            out.append(byte)
            index += 1
            continue
        if index + 1 >= len(data):
            out.append(byte)  # trailing lone IAC: pass through
            index += 1
            continue
        command = data[index + 1]
        if command in (DO, DONT, WILL, WONT) and index + 2 < len(data):
            index += 3
        elif command == SB:
            # Skip to IAC SE (or end of data when truncated).
            end = data.find(bytes([IAC, SE]), index + 2)
            index = end + 2 if end >= 0 else len(data)
        elif command == IAC:
            out.append(IAC)  # escaped 0xFF data byte
            index += 2
        else:
            index += 2
    return bytes(out)


@dataclass
class TelnetConfig:
    """Behavioural knobs for one Telnet endpoint.

    ``auth_required=False`` models the paper's headline misconfiguration:
    connecting drops straight into a shell prompt.  ``shell_prompt`` controls
    whether the unauthenticated console presents as a plain ``$`` or a
    ``root@host:~$`` / ``admin@host:~$`` prompt (Table 2 distinguishes plain
    console access from *root* console access).
    """

    auth_required: bool = True
    credentials: Dict[str, str] = field(default_factory=dict)
    login_banner: str = "login: "
    pre_banner: str = ""  # device greeting before the login prompt
    shell_prompt: str = "$ "
    #: Failed logins tolerated before the server drops the connection;
    #: honeypots set this high to harvest full dictionaries.
    max_attempts: int = 3
    negotiation: Tuple[Tuple[int, int], ...] = (
        (DO, OPT_ECHO),
        (DO, OPT_WINDOW_SIZE),
        (WILL, OPT_ECHO),
        (WILL, OPT_SUPPRESS_GO_AHEAD),
    )
    #: Raw override: when set, the banner is exactly these bytes.  Wild
    #: honeypots use this to reproduce their published static banners.
    raw_banner: Optional[bytes] = None


class TelnetServer(ProtocolServer):
    """Telnet session engine: negotiation, optional login, tiny shell."""

    protocol = ProtocolId.TELNET

    def __init__(self, config: TelnetConfig) -> None:
        self.config = config

    def banner(self) -> bytes:
        if self.config.raw_banner is not None:
            return self.config.raw_banner
        head = negotiate(self.config.negotiation)
        text = ""
        if self.config.pre_banner:
            text += self.config.pre_banner + "\r\n"
        if self.config.auth_required:
            text += self.config.login_banner
        else:
            # Misconfigured: the console is immediately available.
            text += self.config.shell_prompt
        return head + text.encode("utf-8", errors="replace")

    def handle(self, request: bytes, session: Session) -> ServerReply:
        text = strip_iac(request).decode("utf-8", errors="replace").strip()
        return self._step(text, session)

    def handle_repeat(self, request, count, session):
        """Repeated identical requests strip IAC and decode once.

        Flood sessions replay one garbage payload dozens of times; the
        state machine still runs per call (the login cycle mutates
        ``session``), but the byte-level text extraction — the dominant
        per-call cost — hoists out of the loop.  Replies are byte-identical
        to the default loop by construction: each step is the body of
        :meth:`handle` minus the re-parse.
        """
        if count < 2:
            return super().handle_repeat(request, count, session)
        text = strip_iac(request).decode("utf-8", errors="replace").strip()
        replies: List[ServerReply] = []
        for _ in range(count):
            reply = self._step(text, session)
            replies.append(reply)
            if reply.close:
                break
        return replies

    def _step(self, text: str, session: Session) -> ServerReply:
        """Advance the session state machine by one decoded request."""
        if not self.config.auth_required:
            return self._shell(text)
        if session.state in ("new", "await-user"):
            session.username = text
            session.state = "await-password"
            return ServerReply(b"Password: ")
        if session.state == "await-password":
            expected = self.config.credentials.get(session.username)
            if expected is not None and expected == text:
                session.state = "shell"
                return ServerReply(self.config.shell_prompt.encode())
            session.state = "await-user"
            session.attributes["failed"] = str(
                int(session.attributes.get("failed", "0")) + 1
            )
            if int(session.attributes["failed"]) >= self.config.max_attempts:
                return ServerReply(b"Login incorrect\r\n", close=True)
            return ServerReply(b"Login incorrect\r\n" + self.config.login_banner.encode())
        if session.state == "shell":
            return self._shell(text)
        return ServerReply(close=True)

    def _shell(self, command: str) -> ServerReply:
        """A minimal BusyBox-flavoured shell, enough for dropper scripts."""
        prompt = self.config.shell_prompt.encode()
        if not command:
            return ServerReply(prompt)
        name = command.split()[0]
        if name in ("exit", "logout", "quit"):
            return ServerReply(b"Bye\r\n", close=True)
        if name == "echo":
            return ServerReply(command[5:].encode() + b"\r\n" + prompt)
        if name in ("cat", "wget", "curl", "tftp", "busybox", "chmod", "sh", "rm", "cd"):
            # Commands used by IoT droppers: accept silently like BusyBox
            # applets on success.
            return ServerReply(prompt)
        if name == "uname":
            return ServerReply(b"Linux localhost 3.10.14 armv7l\r\n" + prompt)
        return ServerReply(
            b"-sh: " + name.encode(errors="replace") + b": not found\r\n" + prompt
        )
