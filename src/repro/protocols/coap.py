"""CoAP (RFC 7252) binary codec and resource server.

The scan sends ``GET /.well-known/core`` over UDP to port 5683; an
unauthenticated server answers with a CoRE link-format (RFC 6690) resource
listing.  Table 3 keys misconfiguration off response markers — full access
(``x1C``-style), connected sessions, admin access and resource disclosure —
and the paper stresses that *any* Internet-exposed CoAP responder is an
amplification reflector: the link-format response is much larger than the
~21-byte query, which is exactly the amplification factor our DoS model uses.

The codec implements the 4-byte fixed header (version/type/TKL, code, message
ID), tokens, and the delta-encoded option list for Uri-Path — enough to
round-trip every message the study exercises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.errors import ProtocolError
from repro.protocols.base import ProtocolId, ProtocolServer, ServerReply, Session

__all__ = [
    "CoapType",
    "CoapCode",
    "CoapMessage",
    "encode_message",
    "decode_message",
    "well_known_core_request",
    "CoapConfig",
    "CoapServer",
]

COAP_VERSION = 1
OPTION_URI_PATH = 11
OPTION_CONTENT_FORMAT = 12
CONTENT_FORMAT_LINK = 40  # application/link-format


class CoapType(enum.IntEnum):
    """Message types (header bits 2-3)."""

    CONFIRMABLE = 0
    NON_CONFIRMABLE = 1
    ACKNOWLEDGEMENT = 2
    RESET = 3


class CoapCode(enum.IntEnum):
    """Codes as class.detail packed into one byte (c << 5 | dd)."""

    EMPTY = 0x00
    GET = 0x01
    POST = 0x02
    PUT = 0x03
    DELETE = 0x04
    CREATED = 0x41  # 2.01
    DELETED = 0x42  # 2.02
    CONTENT = 0x45  # 2.05
    CHANGED = 0x44  # 2.04
    BAD_REQUEST = 0x80  # 4.00
    UNAUTHORIZED = 0x81  # 4.01
    FORBIDDEN = 0x83  # 4.03
    NOT_FOUND = 0x84  # 4.04

    @property
    def dotted(self) -> str:
        """Human form, e.g. ``2.05``."""
        return f"{int(self) >> 5}.{int(self) & 0x1F:02d}"


@dataclass
class CoapMessage:
    """A decoded CoAP message."""

    mtype: CoapType
    code: CoapCode
    message_id: int
    token: bytes = b""
    uri_path: Tuple[str, ...] = ()
    payload: bytes = b""

    @property
    def path(self) -> str:
        """Slash-joined Uri-Path."""
        return "/" + "/".join(self.uri_path)


def _encode_option(number_delta: int, value: bytes) -> bytes:
    """Encode one option with delta/length nibbles plus extended bytes."""
    out = bytearray()

    def nibble(value_: int) -> Tuple[int, bytes]:
        if value_ < 13:
            return value_, b""
        if value_ < 269:
            return 13, bytes([value_ - 13])
        return 14, (value_ - 269).to_bytes(2, "big")

    delta_nibble, delta_ext = nibble(number_delta)
    length_nibble, length_ext = nibble(len(value))
    out.append((delta_nibble << 4) | length_nibble)
    out += delta_ext + length_ext + value
    return bytes(out)


def encode_message(message: CoapMessage) -> bytes:
    """Serialize a :class:`CoapMessage` to RFC 7252 bytes."""
    if len(message.token) > 8:
        raise ProtocolError("CoAP token longer than 8 bytes")
    header = bytes(
        [
            (COAP_VERSION << 6) | (int(message.mtype) << 4) | len(message.token),
            int(message.code),
        ]
    ) + message.message_id.to_bytes(2, "big")
    body = bytearray(header + message.token)
    previous = 0
    for segment in message.uri_path:
        body += _encode_option(OPTION_URI_PATH - previous, segment.encode("utf-8"))
        previous = OPTION_URI_PATH
    if message.payload:
        body += b"\xff" + message.payload
    return bytes(body)


def decode_message(data: bytes) -> CoapMessage:
    """Parse RFC 7252 bytes into a :class:`CoapMessage`."""
    if len(data) < 4:
        raise ProtocolError("CoAP message shorter than fixed header")
    version = data[0] >> 6
    if version != COAP_VERSION:
        raise ProtocolError(f"unsupported CoAP version {version}")
    mtype = CoapType((data[0] >> 4) & 0x03)
    token_length = data[0] & 0x0F
    if token_length > 8:
        raise ProtocolError("invalid CoAP token length")
    try:
        code = CoapCode(data[1])
    except ValueError as exc:
        raise ProtocolError(f"unknown CoAP code {data[1]:#x}") from exc
    message_id = int.from_bytes(data[2:4], "big")
    offset = 4
    token = data[offset : offset + token_length]
    offset += token_length

    uri_path: List[str] = []
    option_number = 0
    while offset < len(data):
        if data[offset] == 0xFF:
            offset += 1
            break
        byte = data[offset]
        offset += 1
        delta, length = byte >> 4, byte & 0x0F

        def extend(nibble_value: int) -> int:
            nonlocal offset
            if nibble_value == 13:
                value = data[offset] + 13
                offset += 1
                return value
            if nibble_value == 14:
                value = int.from_bytes(data[offset : offset + 2], "big") + 269
                offset += 2
                return value
            if nibble_value == 15:
                raise ProtocolError("reserved CoAP option nibble")
            return nibble_value

        delta = extend(delta)
        length = extend(length)
        option_number += delta
        value = data[offset : offset + length]
        offset += length
        if option_number == OPTION_URI_PATH:
            uri_path.append(value.decode("utf-8", errors="replace"))
    payload = data[offset:]
    return CoapMessage(
        mtype=mtype,
        code=code,
        message_id=message_id,
        token=token,
        uri_path=tuple(uri_path),
        payload=payload,
    )


def _well_known_core_template() -> bytes:
    return encode_message(
        CoapMessage(
            mtype=CoapType.CONFIRMABLE,
            code=CoapCode.GET,
            message_id=0,
            token=b"\xca\xfe",
            uri_path=("." + "well-known", "core"),
        )
    )


_WELL_KNOWN_TEMPLATE = _well_known_core_template()


def well_known_core_request(message_id: int = 0x1234) -> bytes:
    """The scan probe: ``GET /.well-known/core`` (confirmable).

    Only the message id varies between probes, so the encoder runs once
    at import and each call splices the id into the cached template
    (bytes 2-3 of the fixed header) — reflection floods build tens of
    these per session.
    """
    return (
        _WELL_KNOWN_TEMPLATE[:2]
        + message_id.to_bytes(2, "big")
        + _WELL_KNOWN_TEMPLATE[4:]
    )


@dataclass
class CoapConfig:
    """Server behaviour: resources and access control.

    ``access`` levels mirror Table 3:

    * ``"full"`` — unauthenticated read *and write* on every resource;
    * ``"admin"`` — additionally exposes ``/admin`` management resources;
    * ``"read"`` — resource disclosure only (the well-known listing);
    * ``"auth"`` — responds 4.01 Unauthorized to everything.
    """

    access: str = "read"
    resources: Dict[str, bytes] = field(
        default_factory=lambda: {"/sensors/temp": b"21.5"}
    )
    device_title: str = ""


class CoapServer(ProtocolServer):
    """CoAP resource server with RFC 6690 discovery."""

    protocol = ProtocolId.COAP

    def __init__(self, config: CoapConfig) -> None:
        if config.access not in ("full", "admin", "read", "auth"):
            raise ProtocolError(f"unknown CoAP access level {config.access!r}")
        self.config = config
        self.resources: Dict[str, bytes] = dict(config.resources)
        if config.access == "admin":
            self.resources.setdefault("/admin/config", b"220-Admin")
        self.poison_events = 0
        self._listing_cache: Optional[Tuple[Tuple[str, ...], bytes]] = None

    def banner(self) -> bytes:
        return b""  # UDP: no unsolicited bytes

    def link_format(self) -> bytes:
        """RFC 6690 listing of all resources.

        Cached against the resource paths: discovery and reflection
        sessions request the listing tens of times between writes, and
        the listing only depends on which paths exist.
        """
        paths = tuple(sorted(self.resources))
        cached = self._listing_cache
        if cached is not None and cached[0] == paths:
            return cached[1]
        listing = self._build_link_format()
        self._listing_cache = (paths, listing)
        return listing

    def _build_link_format(self) -> bytes:
        entries = []
        for path in sorted(self.resources):
            attrs = ';rt="observe"' if path.startswith("/sensors") else ""
            if self.config.device_title and path == sorted(self.resources)[0]:
                attrs += f';title="{self.config.device_title}"'
            entries.append(f"<{path}>{attrs}")
        return ",".join(entries).encode("utf-8")

    def handle(self, request: bytes, session: Session) -> ServerReply:
        try:
            message = decode_message(request)
        except ProtocolError:
            return ServerReply()  # UDP: garbage is silently dropped
        reply_type = (
            CoapType.ACKNOWLEDGEMENT
            if message.mtype == CoapType.CONFIRMABLE
            else CoapType.NON_CONFIRMABLE
        )

        def reply(code: CoapCode, payload: bytes = b"") -> ServerReply:
            return ServerReply(
                encode_message(
                    CoapMessage(
                        mtype=reply_type,
                        code=code,
                        message_id=message.message_id,
                        token=message.token,
                        payload=payload,
                    )
                )
            )

        if self.config.access == "auth":
            return reply(CoapCode.UNAUTHORIZED)
        path = message.path
        if message.code == CoapCode.GET:
            if path == "/.well-known/core":
                # Devices that gateway CoAP to other services prefix their
                # listing with session markers; Table 3 keys access level off
                # exactly these: "x1C" = full access, "220-Admin" = admin.
                if self.config.access == "full":
                    return reply(CoapCode.CONTENT, b"x1C " + self.link_format())
                if self.config.access == "admin":
                    return reply(
                        CoapCode.CONTENT, b"220-Admin " + self.link_format()
                    )
                return reply(CoapCode.CONTENT, self.link_format())
            if path in self.resources:
                return reply(CoapCode.CONTENT, self.resources[path])
            return reply(CoapCode.NOT_FOUND)
        if message.code in (CoapCode.PUT, CoapCode.POST):
            if self.config.access in ("full", "admin"):
                if path in self.resources:
                    self.poison_events += 1
                self.resources[path] = message.payload
                return reply(CoapCode.CHANGED)
            return reply(CoapCode.FORBIDDEN)
        if message.code == CoapCode.DELETE:
            if self.config.access in ("full", "admin") and path in self.resources:
                del self.resources[path]
                self.poison_events += 1
                return reply(CoapCode.DELETED)
            return reply(CoapCode.FORBIDDEN)
        return reply(CoapCode.BAD_REQUEST)

    def handle_repeat_datagrams(self, request, count, peer=0):
        """Analytic fast path for a run of identical datagrams.

        Reads and rejections never mutate, so one computed reply
        replicates; writes stabilise after the second call (the path now
        exists and the same payload is re-stored, so calls three onward
        each advance ``poison_events`` by one and repeat the second
        reply).  A repeated DELETE removes the resource once and draws
        4.03 Forbidden from then on, with no further mutation.
        """
        if count < 2:
            return super().handle_repeat_datagrams(request, count, peer=peer)
        try:
            message = decode_message(request)
        except ProtocolError:
            return [ServerReply()] * count  # garbage is silently dropped
        mutates = (
            message.code in (CoapCode.PUT, CoapCode.POST, CoapCode.DELETE)
            and self.config.access in ("full", "admin")
        )
        first = self.handle(request, self.open_session(peer=peer))
        if not mutates:
            return [first] * count
        second = self.handle(request, self.open_session(peer=peer))
        if count > 2 and message.code != CoapCode.DELETE:
            self.poison_events += count - 2
        return [first] + [second] * (count - 1)
