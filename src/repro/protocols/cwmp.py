"""TR-069 / CWMP — the paper's first named future-work protocol.

TR-069 (CPE WAN Management Protocol) lets ISPs manage routers and modems.
Every CPE runs a *connection-request* HTTP endpoint, conventionally on TCP
7547, which the ACS pokes to make the device call home.  That endpoint was
the vector of the November 2016 Mirai variant that knocked ~900k Deutsche
Telekom routers offline: devices exposed 7547 to the whole Internet, many
without digest authentication.

The scan surface mirrors that reality:

* a GET to the connection-request path answers with the embedded HTTP
  server banner (``RomPager/4.07`` and friends — themselves vulnerable,
  cf. the "Misfortune Cookie" CVE-2014-9222);
* a hardened CPE answers ``401`` with a ``WWW-Authenticate: Digest``
  challenge;
* a misconfigured CPE answers ``200 OK`` — anyone can trigger management
  sessions ("no auth" in Table 2 terms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.errors import ProtocolError
from repro.protocols.base import ProtocolId, ProtocolServer, ServerReply, Session
from repro.protocols.http import build_response, parse_request

__all__ = ["CwmpConfig", "CwmpServer", "connection_request"]

CONNECTION_REQUEST_PATH = "/tr069"


def connection_request(path: str = CONNECTION_REQUEST_PATH) -> bytes:
    """The ACS-style connection-request probe the scanner sends."""
    return (
        f"GET {path} HTTP/1.1\r\nHost: cpe\r\n"
        "User-Agent: zgrab-cwmp\r\n\r\n"
    ).encode("ascii")


@dataclass
class CwmpConfig:
    """CPE behaviour: server banner and authentication posture."""

    server_header: str = "RomPager/4.07 UPnP/1.0"
    auth_required: bool = True
    realm: str = "IGD"
    connection_request_path: str = CONNECTION_REQUEST_PATH
    #: Number of unauthenticated management sessions triggered (attack
    #: observability for the honeypot side).
    max_sessions: int = 64


class CwmpServer(ProtocolServer):
    """TR-069 connection-request endpoint on TCP 7547."""

    protocol = ProtocolId.TR069

    def __init__(self, config: CwmpConfig) -> None:
        self.config = config
        self.sessions_triggered = 0

    def banner(self) -> bytes:
        return b""

    def handle(self, request: bytes, session: Session) -> ServerReply:
        try:
            parsed = parse_request(request)
        except ProtocolError:
            return ServerReply(
                build_response(400, "Bad Request",
                               server=self.config.server_header),
                close=True,
            )
        if parsed.path != self.config.connection_request_path:
            return ServerReply(
                build_response(404, "Not Found",
                               server=self.config.server_header),
                close=True,
            )
        if self.config.auth_required:
            authorization = parsed.headers.get("authorization", "")
            if not authorization.startswith("Digest "):
                return ServerReply(
                    build_response(
                        401, "Unauthorized",
                        server=self.config.server_header,
                        extra_headers={
                            "WWW-Authenticate":
                                f'Digest realm="{self.config.realm}", '
                                'qop="auth", nonce="0011223344"',
                        },
                    ),
                    close=True,
                )
        # Misconfigured (or authenticated): the CPE schedules an ACS
        # session — the behaviour the Mirai TR-069 variant abused.
        self.sessions_triggered += 1
        return ServerReply(
            build_response(200, "OK", b"", server=self.config.server_header),
            close=True,
        )
