"""SMB negotiation surface and the Eternal* exploit interaction model.

HosTaGe and Dionaea emulate SMB; the paper found it "largely targeted with
the EternalBlue, EternalRomance and EternalChampion exploits" delivering
WannaCry variants (Section 5.1.5), and Figure 6 shows SMB honeypot sources
with the highest VirusTotal malicious rate.

We model the protocol at the dialect-negotiation level — which is the level
those exploits key on: a server that still negotiates the ancient ``NT LM
0.12`` (SMBv1) dialect and lacks the MS17-010 patch is exploitable.  The
request/response bytes follow the SMBv1 header magic (``\\xffSMB``) so the
engine distinguishes real negotiation from garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.protocols.base import ProtocolId, ProtocolServer, ServerReply, Session

__all__ = ["SMB1_MAGIC", "SMB2_MAGIC", "SmbConfig", "SmbServer", "ETERNAL_EXPLOITS"]

SMB1_MAGIC = b"\xffSMB"
SMB2_MAGIC = b"\xfeSMB"
SMB_COM_NEGOTIATE = 0x72
SMB_COM_TRANSACTION2 = 0x32  # EternalBlue rides Trans2 secondary requests

#: The exploit family names seen against the honeypots.
ETERNAL_EXPLOITS = ("EternalBlue", "EternalRomance", "EternalChampion")


@dataclass
class SmbConfig:
    """Server behaviour: dialect support and patch level."""

    supports_smb1: bool = True
    dialects: List[str] = field(default_factory=lambda: ["NT LM 0.12", "SMB 2.002"])
    ms17_010_patched: bool = False
    hostname: str = "WORKGROUP-PC"


class SmbServer(ProtocolServer):
    """SMB endpoint: negotiate, session setup, Trans2 exploit surface."""

    protocol = ProtocolId.SMB

    def __init__(self, config: SmbConfig) -> None:
        self.config = config
        self.exploit_attempts: List[str] = []
        self.compromised = False

    def banner(self) -> bytes:
        return b""  # SMB clients speak first

    def handle(self, request: bytes, session: Session) -> ServerReply:
        if request[:4] == SMB2_MAGIC:
            return ServerReply(SMB2_MAGIC + b"\x00negotiate-response SMB 2.002")
        if request[:4] != SMB1_MAGIC:
            return ServerReply(close=True)
        if not self.config.supports_smb1:
            # Modern servers refuse SMB1 entirely.
            return ServerReply(close=True)
        if len(request) < 5:
            return ServerReply(close=True)
        command = request[4]
        if command == SMB_COM_NEGOTIATE:
            dialect = (
                "NT LM 0.12" if "NT LM 0.12" in self.config.dialects else "SMB 2.002"
            )
            session.state = "negotiated"
            return ServerReply(
                SMB1_MAGIC + b"\x72" + dialect.encode("ascii")
                + b"\x00host=" + self.config.hostname.encode("ascii")
            )
        if command == SMB_COM_TRANSACTION2:
            # An overlong Trans2 secondary = Eternal* exploitation attempt.
            exploit_name = _classify_exploit(request)
            if exploit_name:
                self.exploit_attempts.append(exploit_name)
                if not self.config.ms17_010_patched:
                    self.compromised = True
                    return ServerReply(SMB1_MAGIC + b"\x32\x00pwned")
                return ServerReply(SMB1_MAGIC + b"\x32\xff STATUS_NOT_IMPLEMENTED")
            return ServerReply(SMB1_MAGIC + b"\x32\x00ok")
        return ServerReply(SMB1_MAGIC + b"\x00unsupported")


def _classify_exploit(request: bytes) -> Optional[str]:
    """Name the Eternal* variant from payload markers (our exploit encoder
    stamps the family name; real classification uses byte signatures)."""
    for name in ETERNAL_EXPLOITS:
        if name.encode("ascii") in request:
            return name
    if len(request) > 1024:  # oversized Trans2: generic MS17-010 attempt
        return "EternalBlue"
    return None


def eternal_exploit_request(family: str = "EternalBlue") -> bytes:
    """Build an exploit attempt as the attack models emit it."""
    if family not in ETERNAL_EXPLOITS:
        raise ValueError(f"unknown exploit family {family!r}")
    return SMB1_MAGIC + bytes([SMB_COM_TRANSACTION2]) + family.encode("ascii")


def negotiate_request(dialects: Optional[List[str]] = None) -> bytes:
    """Build an SMB1 negotiate request listing client dialects."""
    listing = ",".join(dialects or ["NT LM 0.12"])
    return SMB1_MAGIC + bytes([SMB_COM_NEGOTIATE]) + listing.encode("ascii")
