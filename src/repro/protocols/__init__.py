"""Protocol codecs and server engines for the twelve protocols in the study."""

from repro.protocols.amqp import AmqpConfig, AmqpServer
from repro.protocols.base import (
    DEFAULT_PORTS,
    ProtocolId,
    ProtocolServer,
    ServerReply,
    Session,
    TransportKind,
    transport_of,
)
from repro.protocols.coap import CoapConfig, CoapMessage, CoapServer
from repro.protocols.ftp import FtpConfig, FtpServer
from repro.protocols.http import HttpConfig, HttpServer
from repro.protocols.modbus import ModbusConfig, ModbusServer
from repro.protocols.mqtt import ConnectReturnCode, MqttBroker, MqttConfig
from repro.protocols.s7 import S7Config, S7Server
from repro.protocols.smb import SmbConfig, SmbServer
from repro.protocols.ssh import SshConfig, SshServer
from repro.protocols.telnet import TelnetConfig, TelnetServer
from repro.protocols.upnp import SsdpDeviceInfo, UpnpConfig, UpnpServer
from repro.protocols.xmpp import XmppConfig, XmppServer

__all__ = [
    "AmqpConfig",
    "AmqpServer",
    "CoapConfig",
    "CoapMessage",
    "CoapServer",
    "ConnectReturnCode",
    "DEFAULT_PORTS",
    "FtpConfig",
    "FtpServer",
    "HttpConfig",
    "HttpServer",
    "ModbusConfig",
    "ModbusServer",
    "MqttBroker",
    "MqttConfig",
    "ProtocolId",
    "ProtocolServer",
    "S7Config",
    "S7Server",
    "ServerReply",
    "Session",
    "SmbConfig",
    "SmbServer",
    "SsdpDeviceInfo",
    "SshConfig",
    "SshServer",
    "TelnetConfig",
    "TelnetServer",
    "TransportKind",
    "UpnpConfig",
    "UpnpServer",
    "XmppConfig",
    "XmppServer",
    "transport_of",
]
