"""Modbus/TCP: MBAP framing, function codes, and a register bank.

Conpot emulates a Siemens PLC exposing Modbus; the paper saw "a large number
of poisoning attacks where adversaries tried to access and change the values
stored in the registers", targeting three of the nineteen function codes —
Read Device Identification (0x2B), the holding registers (0x03/0x06/0x10)
and Report Server/Slave ID (0x11) — with only ~10% of traffic using valid
function codes (Section 5.1.4).

The codec implements the 7-byte MBAP header (transaction id, protocol id 0,
length, unit id) and the PDUs for those functions, plus proper exception
responses (function | 0x80, exception code) for everything else — the
invalid-function-code ratio is an observable the benchmarks reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.errors import ProtocolError
from repro.protocols.base import ProtocolId, ProtocolServer, ServerReply, Session

__all__ = [
    "FUNC_READ_HOLDING",
    "FUNC_WRITE_SINGLE",
    "FUNC_WRITE_MULTIPLE",
    "FUNC_REPORT_SERVER_ID",
    "FUNC_READ_DEVICE_ID",
    "encode_request",
    "decode_mbap",
    "ModbusConfig",
    "ModbusServer",
]

FUNC_READ_HOLDING = 0x03
FUNC_WRITE_SINGLE = 0x06
FUNC_WRITE_MULTIPLE = 0x10
FUNC_REPORT_SERVER_ID = 0x11
FUNC_READ_DEVICE_ID = 0x2B

EXCEPTION_ILLEGAL_FUNCTION = 0x01
EXCEPTION_ILLEGAL_ADDRESS = 0x02

#: All function codes a real Modbus device may implement ("nineteen
#: available" in the paper's phrasing for their Conpot profile).
VALID_FUNCTION_CODES = frozenset(
    [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x0B, 0x0C, 0x0F,
     0x10, 0x11, 0x14, 0x15, 0x16, 0x17, 0x18, 0x2B]
)


def encode_request(
    transaction_id: int, unit: int, function: int, data: bytes = b""
) -> bytes:
    """Encode an MBAP-framed request PDU."""
    pdu = bytes([function]) + data
    return (
        transaction_id.to_bytes(2, "big")
        + b"\x00\x00"  # protocol id 0 = Modbus
        + (len(pdu) + 1).to_bytes(2, "big")
        + bytes([unit])
        + pdu
    )


def decode_mbap(frame: bytes) -> Tuple[int, int, int, bytes]:
    """Split a frame into (transaction id, unit, function, data)."""
    if len(frame) < 8:
        raise ProtocolError("Modbus frame shorter than MBAP header + function")
    if frame[2:4] != b"\x00\x00":
        raise ProtocolError("not a Modbus protocol id")
    transaction_id = int.from_bytes(frame[0:2], "big")
    length = int.from_bytes(frame[4:6], "big")
    if len(frame) < 6 + length:
        raise ProtocolError("truncated Modbus frame")
    unit = frame[6]
    function = frame[7]
    return transaction_id, unit, function, frame[8 : 6 + length]


@dataclass
class ModbusConfig:
    """Device behaviour: identification strings and register bank size."""

    vendor: str = "Siemens"
    product_code: str = "SIMATIC S7-200"
    revision: str = "V2.1"
    register_count: int = 128


class ModbusServer(ProtocolServer):
    """Modbus/TCP slave with holding registers and device identification."""

    protocol = ProtocolId.MODBUS

    def __init__(self, config: ModbusConfig) -> None:
        self.config = config
        self.registers: List[int] = [0] * config.register_count
        self.poison_events = 0
        self.invalid_function_requests = 0
        self.valid_function_requests = 0

    def banner(self) -> bytes:
        return b""

    def handle(self, request: bytes, session: Session) -> ServerReply:
        try:
            transaction_id, unit, function, data = decode_mbap(request)
        except ProtocolError:
            return ServerReply(close=True)

        def respond(pdu: bytes) -> ServerReply:
            return ServerReply(
                transaction_id.to_bytes(2, "big")
                + b"\x00\x00"
                + (len(pdu) + 1).to_bytes(2, "big")
                + bytes([unit])
                + pdu
            )

        def exception(code: int) -> ServerReply:
            self.invalid_function_requests += 1
            return respond(bytes([function | 0x80, code]))

        if function not in VALID_FUNCTION_CODES:
            return exception(EXCEPTION_ILLEGAL_FUNCTION)

        if function == FUNC_READ_HOLDING and len(data) >= 4:
            self.valid_function_requests += 1
            address = int.from_bytes(data[0:2], "big")
            count = int.from_bytes(data[2:4], "big")
            if address + count > len(self.registers):
                return exception(EXCEPTION_ILLEGAL_ADDRESS)
            values = b"".join(
                value.to_bytes(2, "big")
                for value in self.registers[address : address + count]
            )
            return respond(bytes([function, len(values)]) + values)

        if function == FUNC_WRITE_SINGLE and len(data) >= 4:
            self.valid_function_requests += 1
            address = int.from_bytes(data[0:2], "big")
            value = int.from_bytes(data[2:4], "big")
            if address >= len(self.registers):
                return exception(EXCEPTION_ILLEGAL_ADDRESS)
            if self.registers[address] != value:
                self.poison_events += 1
            self.registers[address] = value
            return respond(bytes([function]) + data[:4])

        if function == FUNC_REPORT_SERVER_ID:
            self.valid_function_requests += 1
            identity = f"{self.config.vendor} {self.config.product_code}".encode()
            return respond(bytes([function, len(identity)]) + identity + b"\xff")

        if function == FUNC_READ_DEVICE_ID:
            self.valid_function_requests += 1
            body = (
                f"{self.config.vendor}\x00{self.config.product_code}\x00"
                f"{self.config.revision}"
            ).encode()
            return respond(bytes([function, 0x0E, 0x01]) + body)

        # Valid-but-unimplemented function for this device profile.
        return exception(EXCEPTION_ILLEGAL_FUNCTION)
