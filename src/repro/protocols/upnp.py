"""UPnP/SSDP: HTTP-over-UDP discovery and device description.

SSDP (the discovery leg of UPnP) answers an ``M-SEARCH`` multicast/unicast
request on UDP 1900 with an HTTP/1.1 ``200 OK`` whose headers disclose the
device: ``USN`` (unique service name with UUID), ``SERVER`` (OS + UPnP stack,
e.g. ``Ubuntu/lucid UPnP/1.0 MiniUPnPd/1.4``), ``LOCATION`` (URL of the XML
device description), and ``ST`` (search target).  Table 3's UPnP row shows
exactly such a response as a "resource disclosure" misconfiguration; any
Internet-exposed SSDP responder is also a DDoS reflector (the answer is far
larger than the query — Cloudflare's SSDP attack writeup is cited in the
paper).

The XML device description carries ``friendlyName``, ``manufacturer`` and
``modelName`` — the fields Table 11 uses to identify device types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.protocols.base import ProtocolId, ProtocolServer, ServerReply, Session

__all__ = [
    "msearch_request",
    "parse_headers",
    "SsdpDeviceInfo",
    "UpnpConfig",
    "UpnpServer",
]

SSDP_MULTICAST = "239.255.255.250"
SSDP_PORT = 1900


def msearch_request(search_target: str = "upnp:rootdevice", mx: int = 2) -> bytes:
    """Build an SSDP M-SEARCH discovery request (the scan probe)."""
    lines = [
        "M-SEARCH * HTTP/1.1",
        f"HOST: {SSDP_MULTICAST}:{SSDP_PORT}",
        'MAN: "ssdp:discover"',
        f"MX: {mx}",
        f"ST: {search_target}",
        "",
        "",
    ]
    return "\r\n".join(lines).encode("ascii")


def parse_headers(response: bytes) -> Dict[str, str]:
    """Parse HTTP-style headers from an SSDP datagram (case-insensitive keys,
    upper-cased in the result as SSDP convention renders them)."""
    headers: Dict[str, str] = {}
    text = response.decode("utf-8", errors="replace")
    for line in text.split("\r\n")[1:]:
        if ":" in line:
            key, _, value = line.partition(":")
            headers[key.strip().upper()] = value.strip()
    return headers


@dataclass
class SsdpDeviceInfo:
    """Identity material disclosed by an SSDP endpoint."""

    uuid: str = "5a34308c-1a2c-4546-ac5d-7663dd01dca1"
    server: str = "Ubuntu/lucid UPnP/1.0 MiniUPnPd/1.4"
    friendly_name: str = ""
    manufacturer: str = ""
    model_name: str = ""
    model_description: str = ""
    model_number: str = ""
    location_host: str = "192.168.0.1"
    location_port: int = 16537


@dataclass
class UpnpConfig:
    """Server behaviour: identity + whether description XML is exposed."""

    info: SsdpDeviceInfo = field(default_factory=SsdpDeviceInfo)
    expose_description: bool = True
    #: Silent endpoints do not answer unicast M-SEARCH (properly firewalled).
    respond_to_search: bool = True


class UpnpServer(ProtocolServer):
    """SSDP responder plus the device-description fetch."""

    protocol = ProtocolId.UPNP

    def __init__(self, config: UpnpConfig) -> None:
        self.config = config

    def banner(self) -> bytes:
        return b""

    def search_response(self, search_target: str = "upnp:rootdevice") -> bytes:
        """The 200 OK unicast reply to an M-SEARCH."""
        info = self.config.info
        location = (
            f"http://{info.location_host}:{info.location_port}/rootDesc.xml"
        )
        lines = [
            "HTTP/1.1 200 OK",
            "CACHE-CONTROL: max-age=120",
            f"ST: {search_target}",
            f"USN: uuid:{info.uuid}::{search_target}",
            "EXT:",
            f"SERVER: {info.server}",
        ]
        # Disclosing LOCATION is the "resource disclosure" misconfiguration
        # of Table 3 — hardened endpoints answer without it.
        if self.config.expose_description:
            lines.append(f"LOCATION: {location}")
        lines.extend(["", ""])
        return "\r\n".join(lines).encode("ascii")

    def description_xml(self) -> bytes:
        """UPnP device description (fetched from LOCATION)."""
        info = self.config.info
        fields = []
        if info.friendly_name:
            fields.append(f"<friendlyName>{info.friendly_name}</friendlyName>")
        if info.manufacturer:
            fields.append(f"<manufacturer>{info.manufacturer}</manufacturer>")
        if info.model_name:
            fields.append(f"<modelName>{info.model_name}</modelName>")
        if info.model_description:
            fields.append(
                f"<modelDescription>{info.model_description}</modelDescription>"
            )
        if info.model_number:
            fields.append(f"<modelNumber>{info.model_number}</modelNumber>")
        body = (
            "<?xml version=\"1.0\"?>"
            "<root xmlns=\"urn:schemas-upnp-org:device-1-0\">"
            "<device>" + "".join(fields) + f"<UDN>uuid:{info.uuid}</UDN>"
            "</device></root>"
        )
        return body.encode("utf-8")

    def handle(self, request: bytes, session: Session) -> ServerReply:
        text = request.decode("utf-8", errors="replace")
        first = text.split("\r\n", 1)[0]
        if first.startswith("M-SEARCH"):
            if not self.config.respond_to_search:
                return ServerReply()
            target = "upnp:rootdevice"
            for line in text.split("\r\n"):
                if line.upper().startswith("ST:"):
                    target = line.partition(":")[2].strip()
            return ServerReply(self.search_response(target))
        if first.startswith("GET") and "rootDesc.xml" in first:
            if not self.config.expose_description:
                return ServerReply(b"HTTP/1.1 404 Not Found\r\n\r\n")
            xml = self.description_xml()
            head = (
                b"HTTP/1.1 200 OK\r\nCONTENT-TYPE: text/xml\r\n"
                + f"CONTENT-LENGTH: {len(xml)}\r\n\r\n".encode("ascii")
            )
            return ServerReply(head + xml)
        return ServerReply()

    def handle_repeat_datagrams(self, request, count, peer=0):
        # SSDP keeps no per-datagram state: every identical request draws
        # the same reply, so the run collapses to one handled call.
        return [self.handle(request, self.open_session(peer=peer))] * count
