"""OPC UA — the paper's second named industrial-IoT future-work protocol.

OPC UA's binary transport (TCP 4840) opens with a ``HEL``/``ACK`` message
exchange, after which ``GetEndpoints`` returns the server's endpoint
descriptions including their *security policies*.  The notorious
misconfiguration is an endpoint offering
``http://opcfoundation.org/UA/SecurityPolicy#None`` — unauthenticated,
unencrypted access to an industrial server (repeatedly flagged by BSI and
CISA advisories).

Messages use the real framing: a 3-byte type (``HEL``/``ACK``/``MSG``/
``ERR``), 1 reserved byte (``F``), and a 4-byte little-endian total length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.net.errors import ProtocolError
from repro.protocols.base import ProtocolId, ProtocolServer, ServerReply, Session

__all__ = [
    "SECURITY_POLICY_NONE",
    "SECURITY_POLICY_BASIC256",
    "encode_message",
    "decode_message",
    "hello",
    "get_endpoints",
    "OpcUaConfig",
    "OpcUaServer",
]

SECURITY_POLICY_NONE = "http://opcfoundation.org/UA/SecurityPolicy#None"
SECURITY_POLICY_BASIC256 = (
    "http://opcfoundation.org/UA/SecurityPolicy#Basic256Sha256"
)


def encode_message(message_type: bytes, payload: bytes) -> bytes:
    """Frame one OPC UA TCP message."""
    if len(message_type) != 3:
        raise ProtocolError("OPC UA message type must be 3 bytes")
    total = 8 + len(payload)
    return message_type + b"F" + total.to_bytes(4, "little") + payload


def decode_message(data: bytes) -> Tuple[bytes, bytes]:
    """Unframe → (message type, payload)."""
    if len(data) < 8:
        raise ProtocolError("OPC UA message shorter than header")
    total = int.from_bytes(data[4:8], "little")
    if total != len(data):
        raise ProtocolError("OPC UA length mismatch")
    return data[:3], data[8:]


def hello(endpoint_url: str = "opc.tcp://scanner:4840") -> bytes:
    """The client HEL message opening a connection."""
    url = endpoint_url.encode("utf-8")
    payload = (
        (0).to_bytes(4, "little")          # protocol version
        + (65_536).to_bytes(4, "little")   # receive buffer
        + (65_536).to_bytes(4, "little")   # send buffer
        + len(url).to_bytes(4, "little") + url
    )
    return encode_message(b"HEL", payload)


def get_endpoints() -> bytes:
    """A GetEndpoints service request (simplified body)."""
    return encode_message(b"MSG", b"GetEndpointsRequest")


@dataclass
class OpcUaConfig:
    """Server behaviour: product identity and offered security policies."""

    product_name: str = "SIMATIC NET OPC UA Server"
    endpoint_url: str = "opc.tcp://plc-gateway:4840"
    security_policies: List[str] = field(
        default_factory=lambda: [SECURITY_POLICY_BASIC256]
    )

    @property
    def allows_anonymous(self) -> bool:
        """True when an unsecured endpoint is offered."""
        return SECURITY_POLICY_NONE in self.security_policies


class OpcUaServer(ProtocolServer):
    """OPC UA binary endpoint: HEL/ACK plus GetEndpoints."""

    protocol = ProtocolId.OPCUA

    def __init__(self, config: OpcUaConfig) -> None:
        self.config = config
        self.anonymous_sessions = 0

    def banner(self) -> bytes:
        return b""  # client speaks first

    def handle(self, request: bytes, session: Session) -> ServerReply:
        try:
            message_type, payload = decode_message(request)
        except ProtocolError:
            return ServerReply(close=True)
        if message_type == b"HEL":
            session.state = "acknowledged"
            ack = (
                (0).to_bytes(4, "little")
                + (65_536).to_bytes(4, "little") * 2
            )
            return ServerReply(encode_message(b"ACK", ack))
        if session.state != "acknowledged":
            return ServerReply(
                encode_message(b"ERR", b"BadTcpMessageTypeInvalid"),
                close=True,
            )
        if message_type == b"MSG" and b"GetEndpointsRequest" in payload:
            body = "|".join(
                f"{self.config.endpoint_url};{policy};{self.config.product_name}"
                for policy in self.config.security_policies
            ).encode("utf-8")
            return ServerReply(encode_message(b"MSG", body))
        if message_type == b"MSG" and b"CreateSessionRequest" in payload:
            if self.config.allows_anonymous:
                self.anonymous_sessions += 1
                return ServerReply(encode_message(b"MSG", b"SessionCreated"))
            return ServerReply(
                encode_message(b"ERR", b"BadSecurityPolicyRejected"),
                close=True,
            )
        return ServerReply(encode_message(b"ERR", b"BadServiceUnsupported"),
                           close=True)
