"""MQTT 3.1.1 wire codec and a minimal broker engine.

Implements the packet types the study touches: CONNECT/CONNACK (the scan
checks whether a broker answers CONNECT-without-credentials with return code
0 — Table 2's ``MQTT Connection Code:0`` indicator), SUBSCRIBE/SUBACK and
PUBLISH (attackers read ``$SYS`` topics and poison retained data — Section
5.1.2), and PINGREQ/PINGRESP.

The remaining-length field uses MQTT's base-128 varint; strings are UTF-8
with a two-byte length prefix, both per the OASIS 3.1.1 specification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.errors import ProtocolError
from repro.protocols.base import ProtocolId, ProtocolServer, ServerReply, Session

__all__ = [
    "MqttPacketType",
    "ConnectReturnCode",
    "encode_remaining_length",
    "decode_remaining_length",
    "encode_connect",
    "encode_connack",
    "decode_connack",
    "encode_publish",
    "encode_subscribe",
    "MqttConfig",
    "MqttBroker",
]


class MqttPacketType(enum.IntEnum):
    """MQTT control packet types (high nibble of byte 0)."""

    CONNECT = 1
    CONNACK = 2
    PUBLISH = 3
    PUBACK = 4
    SUBSCRIBE = 8
    SUBACK = 9
    UNSUBSCRIBE = 10
    UNSUBACK = 11
    PINGREQ = 12
    PINGRESP = 13
    DISCONNECT = 14


class ConnectReturnCode(enum.IntEnum):
    """CONNACK return codes (3.1.1 §3.2.2.3)."""

    ACCEPTED = 0
    UNACCEPTABLE_PROTOCOL = 1
    IDENTIFIER_REJECTED = 2
    SERVER_UNAVAILABLE = 3
    BAD_CREDENTIALS = 4
    NOT_AUTHORIZED = 5


def encode_remaining_length(value: int) -> bytes:
    """Encode MQTT's base-128 variable length (max 4 bytes)."""
    if value < 0 or value > 268_435_455:
        raise ProtocolError(f"remaining length out of range: {value}")
    out = bytearray()
    while True:
        digit = value % 128
        value //= 128
        if value:
            out.append(digit | 0x80)
        else:
            out.append(digit)
            return bytes(out)


def decode_remaining_length(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode the varint at ``offset``; returns (value, bytes consumed)."""
    multiplier = 1
    value = 0
    consumed = 0
    while True:
        if offset + consumed >= len(data):
            raise ProtocolError("truncated remaining-length field")
        byte = data[offset + consumed]
        value += (byte & 0x7F) * multiplier
        consumed += 1
        if not byte & 0x80:
            return value, consumed
        multiplier *= 128
        if consumed > 4:
            raise ProtocolError("remaining-length varint too long")


def _mqtt_string(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError("MQTT string too long")
    return len(raw).to_bytes(2, "big") + raw


def _read_string(data: bytes, offset: int) -> Tuple[str, int]:
    if offset + 2 > len(data):
        raise ProtocolError("truncated MQTT string length")
    length = int.from_bytes(data[offset : offset + 2], "big")
    end = offset + 2 + length
    if end > len(data):
        raise ProtocolError("truncated MQTT string body")
    return data[offset + 2 : end].decode("utf-8", errors="replace"), end


def encode_connect(
    client_id: str,
    username: Optional[str] = None,
    password: Optional[str] = None,
    keepalive: int = 60,
) -> bytes:
    """Encode a CONNECT packet (3.1.1, clean session)."""
    flags = 0x02  # clean session
    if username is not None:
        flags |= 0x80
    if password is not None:
        flags |= 0x40
    variable = (
        _mqtt_string("MQTT")
        + bytes([0x04, flags])
        + keepalive.to_bytes(2, "big")
        + _mqtt_string(client_id)
    )
    if username is not None:
        variable += _mqtt_string(username)
    if password is not None:
        variable += _mqtt_string(password)
    return bytes([MqttPacketType.CONNECT << 4]) + encode_remaining_length(
        len(variable)
    ) + variable


def encode_connack(return_code: ConnectReturnCode, session_present: bool = False) -> bytes:
    """Encode a CONNACK packet."""
    return bytes(
        [
            MqttPacketType.CONNACK << 4,
            2,
            1 if session_present else 0,
            int(return_code),
        ]
    )


def decode_connack(data: bytes) -> ConnectReturnCode:
    """Extract the return code from a CONNACK; raises on anything else."""
    if len(data) < 4 or data[0] >> 4 != MqttPacketType.CONNACK:
        raise ProtocolError("not a CONNACK packet")
    return ConnectReturnCode(data[3])


def encode_publish(
    topic: str, payload: bytes, retain: bool = False,
    qos: int = 0, packet_id: int = 0,
) -> bytes:
    """Encode a PUBLISH packet (QoS 0 or 1; QoS 1 carries a packet id)."""
    if qos not in (0, 1):
        raise ProtocolError("only QoS 0/1 are modelled")
    header = (
        (MqttPacketType.PUBLISH << 4)
        | (qos << 1)
        | (0x01 if retain else 0x00)
    )
    variable = _mqtt_string(topic)
    if qos == 1:
        variable += packet_id.to_bytes(2, "big")
    variable += payload
    return bytes([header]) + encode_remaining_length(len(variable)) + variable


def encode_subscribe(packet_id: int, topics: List[str]) -> bytes:
    """Encode a SUBSCRIBE packet (QoS 0 for every filter)."""
    variable = packet_id.to_bytes(2, "big")
    for topic in topics:
        variable += _mqtt_string(topic) + b"\x00"
    header = (MqttPacketType.SUBSCRIBE << 4) | 0x02
    return bytes([header]) + encode_remaining_length(len(variable)) + variable


@dataclass
class MqttConfig:
    """Broker behaviour: authentication and initial topic tree."""

    auth_required: bool = True
    credentials: Dict[str, str] = field(default_factory=dict)
    #: retained messages keyed by topic; includes $SYS info topics.
    topics: Dict[str, bytes] = field(default_factory=dict)
    broker_product: str = "mosquitto"
    broker_version: str = "1.6.9"


class MqttBroker(ProtocolServer):
    """A small MQTT 3.1.1 broker sufficient for scans and attack emulation."""

    protocol = ProtocolId.MQTT

    def __init__(self, config: MqttConfig) -> None:
        self.config = config
        self.topics: Dict[str, bytes] = dict(config.topics)
        self.topics.setdefault(
            "$SYS/broker/version",
            f"{config.broker_product} version {config.broker_version}".encode(),
        )
        self.poison_events: int = 0  # writes observed to existing topics

    def banner(self) -> bytes:
        return b""  # MQTT servers speak only when spoken to

    def handle(self, request: bytes, session: Session) -> ServerReply:
        if not request:
            return ServerReply()
        packet_type = request[0] >> 4
        if packet_type == MqttPacketType.CONNECT:
            return self._connect(request, session)
        if session.state != "connected":
            return ServerReply(close=True)
        if packet_type == MqttPacketType.PINGREQ:
            return ServerReply(bytes([MqttPacketType.PINGRESP << 4, 0]))
        if packet_type == MqttPacketType.SUBSCRIBE:
            return self._subscribe(request)
        if packet_type == MqttPacketType.PUBLISH:
            return self._publish(request)
        if packet_type == MqttPacketType.DISCONNECT:
            return ServerReply(close=True)
        return ServerReply()

    # -- packet handlers --------------------------------------------------

    def _connect(self, request: bytes, session: Session) -> ServerReply:
        try:
            _, var_offset = decode_remaining_length(request, 1)
            offset = 1 + var_offset
            _, offset = _read_string(request, offset)  # protocol name
            flags = request[offset + 1]
            offset += 4  # level + flags + keepalive
            _, offset = _read_string(request, offset)  # client id
            username = password = None
            if flags & 0x80:
                username, offset = _read_string(request, offset)
            if flags & 0x40:
                password, offset = _read_string(request, offset)
        except (ProtocolError, IndexError):
            return ServerReply(close=True)

        if not self.config.auth_required:
            session.state = "connected"
            return ServerReply(encode_connack(ConnectReturnCode.ACCEPTED))
        if username is None:
            return ServerReply(
                encode_connack(ConnectReturnCode.NOT_AUTHORIZED), close=True
            )
        if self.config.credentials.get(username) == password:
            session.state = "connected"
            session.username = username
            return ServerReply(encode_connack(ConnectReturnCode.ACCEPTED))
        return ServerReply(
            encode_connack(ConnectReturnCode.BAD_CREDENTIALS), close=True
        )

    def _subscribe(self, request: bytes) -> ServerReply:
        try:
            _, var_offset = decode_remaining_length(request, 1)
            offset = 1 + var_offset
            packet_id = int.from_bytes(request[offset : offset + 2], "big")
            offset += 2
            granted = bytearray()
            replies = bytearray()
            while offset < len(request):
                topic_filter, offset = _read_string(request, offset)
                offset += 1  # requested QoS
                granted.append(0x00)
                for topic, payload in self._matching(topic_filter):
                    replies += encode_publish(topic, payload, retain=True)
        except (ProtocolError, IndexError):
            return ServerReply(close=True)
        suback = (
            bytes([MqttPacketType.SUBACK << 4])
            + encode_remaining_length(2 + len(granted))
            + packet_id.to_bytes(2, "big")
            + bytes(granted)
        )
        return ServerReply(suback + bytes(replies))

    def _publish(self, request: bytes) -> ServerReply:
        qos = (request[0] >> 1) & 0x03
        try:
            _, var_offset = decode_remaining_length(request, 1)
            offset = 1 + var_offset
            topic, offset = _read_string(request, offset)
            packet_id = 0
            if qos == 1:
                packet_id = int.from_bytes(request[offset : offset + 2], "big")
                offset += 2
            payload = request[offset:]
        except (ProtocolError, IndexError):
            return ServerReply(close=True)
        if topic in self.topics:
            self.poison_events += 1  # overwriting existing (retained) data
        self.topics[topic] = payload
        if qos == 1:
            puback = (
                bytes([MqttPacketType.PUBACK << 4, 2])
                + packet_id.to_bytes(2, "big")
            )
            return ServerReply(puback)
        return ServerReply()

    def _matching(self, topic_filter: str) -> List[Tuple[str, bytes]]:
        """Retained messages matching a filter (supports ``#`` and ``+``)."""
        results = []
        for topic, payload in self.topics.items():
            if _topic_matches(topic_filter, topic):
                results.append((topic, payload))
        return results


def _topic_matches(topic_filter: str, topic: str) -> bool:
    """MQTT topic-filter matching with ``+`` and trailing ``#`` wildcards."""
    filter_parts = topic_filter.split("/")
    topic_parts = topic.split("/")
    for index, part in enumerate(filter_parts):
        if part == "#":
            return True
        if index >= len(topic_parts):
            return False
        if part != "+" and part != topic_parts[index]:
            return False
    return len(filter_parts) == len(topic_parts)
