"""DDS/RTPS — the paper's named industrial-IoT future-work protocol.

DDS (Data Distribution Service) middleware rides the RTPS wire protocol;
participant discovery (SPDP) runs over UDP on the well-known port
7400 + 250·domain + 0/1 (domain 0 discovery = 7400).  An SPDP announcement
answers with the participant's GUID prefix, vendor id and offered
endpoints — exposed to the Internet this both discloses the industrial
topology and, like CoAP/SSDP, works as a reflection primitive.

We implement the RTPS header (magic "RTPS", protocol version, vendor id,
GUID prefix) and a minimal SPDP DATA(p) submessage carrying the participant
name; enough to round-trip the discovery exchange the scanner and attack
layers need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.net.errors import ProtocolError
from repro.protocols.base import ProtocolId, ProtocolServer, ServerReply, Session

__all__ = [
    "RTPS_MAGIC",
    "encode_rtps_header",
    "decode_rtps_header",
    "spdp_probe",
    "DdsConfig",
    "DdsServer",
]

RTPS_MAGIC = b"RTPS"
PROTOCOL_VERSION = (2, 3)
SUBMESSAGE_DATA_P = 0x15
#: Vendor ids from the OMG registry (a few well-known implementations).
VENDOR_RTI = b"\x01\x01"
VENDOR_OPENSPLICE = b"\x01\x02"
VENDOR_EPROSIMA = b"\x01\x0f"


def encode_rtps_header(guid_prefix: bytes, vendor: bytes = VENDOR_EPROSIMA) -> bytes:
    """The 20-byte RTPS message header."""
    if len(guid_prefix) != 12:
        raise ProtocolError("RTPS GUID prefix must be 12 bytes")
    if len(vendor) != 2:
        raise ProtocolError("RTPS vendor id must be 2 bytes")
    return RTPS_MAGIC + bytes(PROTOCOL_VERSION) + vendor + guid_prefix


def decode_rtps_header(data: bytes) -> Tuple[Tuple[int, int], bytes, bytes]:
    """Parse an RTPS header → (version, vendor id, GUID prefix)."""
    if len(data) < 20 or data[:4] != RTPS_MAGIC:
        raise ProtocolError("not an RTPS message")
    version = (data[4], data[5])
    vendor = data[6:8]
    guid_prefix = data[8:20]
    return version, vendor, guid_prefix


def spdp_probe(guid_prefix: bytes = b"\x00" * 12) -> bytes:
    """A participant-discovery probe (what the scanner emits)."""
    header = encode_rtps_header(guid_prefix)
    # An (empty) DATA(p) submessage asking for participant announcements.
    submessage = bytes([SUBMESSAGE_DATA_P, 0x05, 0x00, 0x00])
    return header + submessage


@dataclass
class DdsConfig:
    """Participant behaviour: identity and discovery policy."""

    guid_prefix: bytes = b"\x01\x0f\x44\x55\x66\x77\x88\x99\xaa\xbb\xcc\xdd"
    vendor: bytes = VENDOR_EPROSIMA
    participant_name: str = "FactoryCell/ConveyorController"
    #: Topics the participant publishes (disclosed in discovery).
    topics: Tuple[str, ...] = ("rt/conveyor/speed", "rt/plc/setpoints")
    #: Hardened deployments ignore unicast SPDP from unknown peers.
    answer_unknown_peers: bool = True


class DdsServer(ProtocolServer):
    """RTPS participant answering SPDP discovery."""

    protocol = ProtocolId.DDS

    def __init__(self, config: DdsConfig) -> None:
        self.config = config
        self.discoveries_answered = 0

    def banner(self) -> bytes:
        return b""

    def announcement(self) -> bytes:
        """The SPDP DATA(p) reply disclosing the participant."""
        header = encode_rtps_header(self.config.guid_prefix, self.config.vendor)
        name = self.config.participant_name.encode("utf-8")
        topics = ",".join(self.config.topics).encode("utf-8")
        body = (
            bytes([SUBMESSAGE_DATA_P, 0x05])
            + len(name).to_bytes(2, "little") + name
            + len(topics).to_bytes(2, "little") + topics
        )
        return header + body

    def handle(self, request: bytes, session: Session) -> ServerReply:
        try:
            _version, _vendor, _prefix = decode_rtps_header(request)
        except ProtocolError:
            return ServerReply()  # UDP garbage: drop silently
        if not self.config.answer_unknown_peers:
            return ServerReply()
        if len(request) > 20 and request[20] == SUBMESSAGE_DATA_P:
            self.discoveries_answered += 1
            return ServerReply(self.announcement())
        return ServerReply()
