"""Common protocol abstractions.

Every protocol in the study is modelled at two levels:

* a **wire codec** — functions that encode/decode the actual byte format of
  the protocol (MQTT fixed headers, CoAP binary headers, SSDP HTTP-over-UDP,
  Telnet IAC negotiation, ...), so that the scanner, the honeypots and the
  device population all speak the same bytes; and
* a **server engine** (:class:`ProtocolServer`) — the behaviour of one
  listening service on one simulated host: what banner it volunteers on
  connect, and how it answers an application-layer request.

The scanner never peeks into server objects; it only sees bytes, exactly as
ZGrab only sees bytes.  Misconfiguration is therefore *observable behaviour*
(an MQTT CONNACK code 0 without credentials), not a flag the classifier could
cheat by reading.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ProtocolId",
    "DEFAULT_PORTS",
    "TransportKind",
    "transport_of",
    "ServerReply",
    "ProtocolServer",
    "Session",
]


class ProtocolId(str, enum.Enum):
    """The protocols appearing in the study.

    The first six are the scanned IoT protocols; the rest are additional
    services emulated by the deployed honeypots (Table 7).
    """

    TELNET = "telnet"
    MQTT = "mqtt"
    COAP = "coap"
    AMQP = "amqp"
    XMPP = "xmpp"
    UPNP = "upnp"
    SSH = "ssh"
    HTTP = "http"
    FTP = "ftp"
    SMB = "smb"
    MODBUS = "modbus"
    S7 = "s7"
    # Extension protocols (the paper's §6 future work): TR-069/CWMP, DDS
    # and OPC UA.  Not part of the six-protocol reproduction scans unless a
    # study opts in via ``ScanConfig.protocols``.
    TR069 = "tr069"
    DDS = "dds"
    OPCUA = "opcua"

    def __str__(self) -> str:  # nicer table rendering
        return self.value


#: Ports probed per protocol.  Telnet is scanned on both 23 and 2323 — the
#: paper calls this out as a reason its host counts exceed Project Sonar's.
DEFAULT_PORTS: Dict[ProtocolId, Tuple[int, ...]] = {
    ProtocolId.TELNET: (23, 2323),
    ProtocolId.MQTT: (1883,),
    ProtocolId.COAP: (5683,),
    ProtocolId.AMQP: (5672,),
    ProtocolId.XMPP: (5222, 5269),
    ProtocolId.UPNP: (1900,),
    ProtocolId.SSH: (22,),
    ProtocolId.HTTP: (80, 8080),
    ProtocolId.FTP: (21,),
    ProtocolId.SMB: (445,),
    ProtocolId.MODBUS: (502,),
    ProtocolId.S7: (102,),
    ProtocolId.TR069: (7547,),
    ProtocolId.DDS: (7400,),
    ProtocolId.OPCUA: (4840,),
}


class TransportKind(str, enum.Enum):
    """Transport used by each protocol (drives scan strategy)."""

    TCP = "tcp"
    UDP = "udp"


_UDP_PROTOCOLS = {ProtocolId.COAP, ProtocolId.UPNP, ProtocolId.DDS}


def transport_of(protocol: ProtocolId) -> TransportKind:
    """Transport layer of a protocol: CoAP and UPnP/SSDP ride UDP."""
    return TransportKind.UDP if protocol in _UDP_PROTOCOLS else TransportKind.TCP


@dataclass
class ServerReply:
    """What a server sends back for one request.

    ``close`` signals that the server tears the connection down after the
    reply (e.g. failed MQTT auth).
    """

    data: bytes = b""
    close: bool = False

    def __bool__(self) -> bool:
        return bool(self.data)


@dataclass
class Session:
    """Per-connection state a stateful server may keep (login phase etc.)."""

    peer: int = 0
    state: str = "new"
    username: str = ""
    attributes: Dict[str, str] = field(default_factory=dict)


class ProtocolServer(abc.ABC):
    """One listening service on one simulated host.

    Subclasses implement the wire behaviour; the base class fixes the
    single probe surface used by the simulated TCP/UDP fabric and the
    scanner (which no longer branches per protocol):

    * :meth:`accept` — called exactly once when a TCP connection is
      established; returns the bytes the server volunteers unprompted
      (the banner) and may initialise :class:`Session` state.  UDP
      services are never "accepted" — their first event is a datagram
      delivered straight to :meth:`handle`.
    * :meth:`handle` — reply to one inbound application-layer message in
      the context of a :class:`Session`.

    ``ServerReply.close`` semantics, uniform across protocols:

    ========================  =============================================
    ``close``                 meaning
    ========================  =============================================
    ``False`` (default)       session stays open; further ``handle`` calls
                              continue the same dialogue
    ``True`` with ``data``    reply bytes are delivered, *then* the server
                              tears the connection down (FTP ``221``,
                              Telnet ``Login incorrect``, AMQP header
                              rejection, XMPP stream errors)
    ``True`` without ``data``  silent teardown — a RST/FIN with no
                              application bytes (SSH protocol mismatch,
                              SMB rejecting an unknown dialect, services
                              dropping garbage input)
    ========================  =============================================

    After a closing reply the fabric marks the :class:`TcpConnection`
    closed; any further ``send`` raises ``ConnectionRefused``.  For UDP,
    ``close`` is meaningless and ignored (there is no connection).
    """

    protocol: ProtocolId

    @abc.abstractmethod
    def banner(self) -> bytes:
        """Bytes sent unprompted on connection establishment."""

    def accept(self, session: Session) -> bytes:
        """TCP accept hook: the unprompted greeting for this connection.

        The default returns :meth:`banner`; stateful servers may override
        to stamp ``session`` (e.g. advance a login state machine) while
        keeping the banner bytes identical for every peer.
        """
        return self.banner()

    @abc.abstractmethod
    def handle(self, request: bytes, session: Session) -> ServerReply:
        """Reply to one request within an established session."""

    def open_session(self, peer: int = 0) -> Session:
        """Create fresh per-connection state."""
        return Session(peer=peer)

    def handle_repeat(
        self, request: bytes, count: int, session: Session
    ) -> List[ServerReply]:
        """Handle ``count`` copies of one request within one TCP session.

        The contract is *exactly* ``count`` sequential :meth:`handle`
        calls, truncated after the first closing reply (mirroring how a
        driver loop stops sending once the server tears the connection
        down).  The returned list is therefore ``count`` replies, or
        shorter with ``replies[-1].close`` true.

        Flood and reflection payload lists repeat one identical packet
        tens of times; servers whose repeat response is analytically
        predictable (stateless responders, pure-counter floods) override
        this with a fast path that must stay byte-identical to the
        default loop — the attack plane's scalar oracle pins that.
        """
        replies: List[ServerReply] = []
        for _ in range(count):
            reply = self.handle(request, session)
            replies.append(reply)
            if reply.close:
                break
        return replies

    def handle_repeat_datagrams(
        self, request: bytes, count: int, peer: int = 0
    ) -> List[ServerReply]:
        """Handle ``count`` identical datagrams, each in a fresh session.

        The UDP twin of :meth:`handle_repeat`: datagram services get a
        fresh :class:`Session` per packet and never close, so the result
        is always exactly ``count`` replies.  Overrides must match this
        loop byte-for-byte.
        """
        return [
            self.handle(request, self.open_session(peer=peer))
            for _ in range(count)
        ]

    def describe(self) -> str:
        """One-line human description for logs and reports."""
        return f"{type(self).__name__}({self.protocol})"


def first_line(data: bytes, limit: int = 200) -> str:
    """Decode the first text line of a payload for logging/classification."""
    try:
        text = data.decode("utf-8", errors="replace")
    except Exception:  # pragma: no cover - decode with replace cannot raise
        return ""
    return text.splitlines()[0][:limit] if text else ""
