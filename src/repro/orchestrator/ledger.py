"""The orchestrator's append-only write-ahead ledger.

Every campaign submission and state transition is one length-framed,
checksummed record appended (and fsynced) before the in-memory state
changes — the classic write-ahead discipline: the durable log is the
truth and the scheduler's queue is a replayable view of it.  A record is
the :mod:`repro.core.integrity` envelope of a canonical-JSON payload,
keyed by its sequence number, behind a 4-byte big-endian length prefix::

    [len][REPRO-ENVELOPE-1 | header(seq, sha256, …) | json payload] …

``kill -9`` can only ever damage the *tail* of such a file: a torn
frame, a half-written envelope, a record whose checksum never finished
landing.  :meth:`CampaignLedger.replay` therefore recovers every record
up to the last verifiable one byte-exactly, moves the damaged tail bytes
into ``quarantine/`` (reasoned, like every other quarantined artifact)
and truncates the file back to the last good frame so subsequent appends
extend a clean log.  Damage *before* the tail — a record that fails
verification with intact frames after it — cannot be explained by a torn
append and raises :class:`~repro.net.errors.LedgerError` instead of
silently dropping history.

Appends are guarded by the ``ledger.io`` fault site: a transient verdict
is retried (attempt-keyed, like supervised tasks), and an exhausted
retry budget or a fatal verdict surfaces as
:class:`~repro.net.errors.LedgerError` — durability must fail loudly,
never drop a record on the floor.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from typing import Dict, List

from repro.core import faults
from repro.core.integrity import (
    QuarantineRecord,
    quarantine_file,
    unwrap_envelope,
    wrap_envelope,
)
from repro.net.errors import EnvelopeError, FaultError, LedgerError

__all__ = ["LEDGER_SCHEMA_VERSION", "CampaignLedger"]

#: Ledger record layout version; a bumped ledger reads as damaged-body.
LEDGER_SCHEMA_VERSION = 1

_FRAME_LEN = struct.Struct("!I")

#: Bounded retry budget for ``ledger.io``-faulted appends.
_APPEND_ATTEMPTS = 4


class CampaignLedger:
    """Append-only, crash-safe record log backing one orchestrator.

    Not a general-purpose store: exactly one orchestrator owns a ledger
    file at a time (appends are serialized by an in-process lock), and
    records are plain JSON dicts — the scheduler defines their meaning.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = os.path.expanduser(os.fspath(path))
        #: Damaged tail records moved aside by :meth:`replay`.
        self.quarantined: List[QuarantineRecord] = []
        self._lock = threading.Lock()
        self._next_seq = 0

    def __len__(self) -> int:
        return self._next_seq

    # -- replay ------------------------------------------------------------

    def replay(self) -> List[Dict[str, object]]:
        """Read every verifiable record, in order; heal a torn tail.

        Returns the decoded record dicts.  A missing file is an empty
        ledger.  A damaged tail (torn frame, failed envelope on the
        final record) is quarantined and truncated away; damage with
        intact records after it raises :class:`LedgerError`.
        """
        with self._lock:
            try:
                with open(self.path, "rb") as handle:
                    blob = handle.read()
            except FileNotFoundError:
                self._next_seq = 0
                return []
            except OSError as error:
                raise LedgerError(
                    f"cannot read ledger {self.path}: {error}"
                ) from error
            records: List[Dict[str, object]] = []
            offset = 0
            seq = 0
            damage = None
            frame_end = len(blob)
            while offset < len(blob):
                if offset + _FRAME_LEN.size > len(blob):
                    damage = "truncated"
                    frame_end = len(blob)
                    break
                (length,) = _FRAME_LEN.unpack_from(blob, offset)
                frame_end = offset + _FRAME_LEN.size + length
                if frame_end > len(blob):
                    damage = "truncated"
                    frame_end = len(blob)
                    break
                framed = blob[offset + _FRAME_LEN.size:frame_end]
                try:
                    payload = unwrap_envelope(
                        framed,
                        schema=LEDGER_SCHEMA_VERSION,
                        kind="ledger",
                        key=str(seq),
                    )
                    record = json.loads(payload.decode("utf-8"))
                    if not isinstance(record, dict):
                        raise ValueError("record is not an object")
                except EnvelopeError as error:
                    damage = error.reason
                    break
                except (ValueError, UnicodeDecodeError):
                    damage = "malformed-payload"
                    break
                records.append(record)
                seq += 1
                offset = frame_end
            if damage is not None:
                if frame_end < len(blob):
                    # Intact frames follow the damaged record: this is
                    # body corruption, not a torn append — refusing is
                    # the only honest option, because "recovering" past
                    # it would silently drop committed history.
                    raise LedgerError(
                        f"ledger {self.path} record {seq} is damaged "
                        f"({damage}) with {len(blob) - frame_end} intact "
                        "byte(s) after it — not a torn tail; refusing "
                        "to drop committed records"
                    )
                self._quarantine_tail(blob[offset:], seq, damage)
                try:
                    with open(self.path, "r+b") as handle:
                        handle.truncate(offset)
                except OSError as error:
                    raise LedgerError(
                        f"cannot truncate torn tail of {self.path}: {error}"
                    ) from error
            self._next_seq = seq
            return records

    def _quarantine_tail(self, tail: bytes, seq: int, reason: str) -> None:
        """Move torn tail bytes aside (best-effort, like all quarantine)."""
        damaged = f"{self.path}.record-{seq}.torn"
        try:
            with open(damaged, "wb") as handle:
                handle.write(tail)
        except OSError:
            return
        record = quarantine_file(
            damaged,
            key=f"ledger.record.{seq}",
            reason=reason,
            stage="ledger.replay",
            namespace="ledger",
        )
        if record is not None:
            self.quarantined.append(record)

    # -- append ------------------------------------------------------------

    def append(self, record: Dict[str, object]) -> int:
        """Durably append one record; returns its sequence number.

        Stamps ``record["seq"]``, frames and fsyncs before returning —
        once this returns, replay after any crash sees the record.
        """
        with self._lock:
            seq = self._next_seq
            stamped = dict(record)
            stamped["seq"] = seq
            payload = json.dumps(
                stamped, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            framed = wrap_envelope(
                payload,
                schema=LEDGER_SCHEMA_VERSION,
                kind="ledger",
                key=str(seq),
            )
            blob = _FRAME_LEN.pack(len(framed)) + framed
            attempt = 0
            while True:
                try:
                    with faults.task_attempt(attempt):
                        faults.maybe_fail("ledger.io", "append", seq)
                    directory = os.path.dirname(self.path)
                    if directory:
                        os.makedirs(directory, exist_ok=True)
                    with open(self.path, "ab") as handle:
                        handle.write(blob)
                        handle.flush()
                        os.fsync(handle.fileno())
                    break
                except FaultError as error:
                    if error.transient and attempt + 1 < _APPEND_ATTEMPTS:
                        attempt += 1
                        continue
                    raise LedgerError(
                        f"ledger append (seq {seq}) failed after "
                        f"{attempt + 1} attempt(s): {error}"
                    ) from error
                except OSError as error:
                    raise LedgerError(
                        f"cannot append to ledger {self.path}: {error}"
                    ) from error
            self._next_seq = seq + 1
            return seq
