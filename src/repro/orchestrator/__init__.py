"""Durable multi-campaign orchestration: crash-safe queue, leases,
pause/resume/cancel.

See :mod:`repro.orchestrator.scheduler` for the scheduler and
:mod:`repro.orchestrator.ledger` for the write-ahead ledger underneath
it.
"""

from repro.orchestrator.ledger import LEDGER_SCHEMA_VERSION, CampaignLedger
from repro.orchestrator.scheduler import (
    ACTIVE_STATES,
    CAMPAIGN_STATES,
    TERMINAL_STATES,
    Campaign,
    CampaignCancelled,
    CampaignInterrupt,
    CampaignPaused,
    CampaignSpec,
    LeaseExpired,
    Orchestrator,
)

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "CampaignLedger",
    "CAMPAIGN_STATES",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "Campaign",
    "CampaignSpec",
    "CampaignInterrupt",
    "CampaignPaused",
    "CampaignCancelled",
    "LeaseExpired",
    "Orchestrator",
]
