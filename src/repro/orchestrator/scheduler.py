"""Durable multi-campaign scheduling over a bounded worker pool.

The :class:`Orchestrator` composes the pieces the pipeline already
proved one campaign at a time — fingerprinted task journals, checksummed
envelopes, pool supervision — into a long-lived service running *many*
campaigns:

* **Write-ahead everything.**  Submissions and state transitions hit the
  :class:`~repro.orchestrator.ledger.CampaignLedger` before memory, so a
  ``kill -9`` at any instant loses nothing: construction replays the
  ledger and rebuilds the queue byte-exactly, requeueing campaigns that
  died holding a lease.
* **Lease-based execution.**  A running campaign holds a heartbeat
  lease renewed at every task boundary (via
  :func:`~repro.core.tasks.task_checkpoint`) and every phase boundary
  (the engine's ``on_phase`` hook).  A lease that is not renewed — the
  ``lease.expire`` fault site suppresses renewal, keyed per lease
  incarnation — expires and the campaign requeues, resuming from its
  TaskJournals byte-identically.  A per-campaign restart budget
  circuit-breaks repeat offenders to ``failed``.
* **Cooperative pause / cancel.**  ``pause``/``cancel`` on a running
  campaign set an interrupt the heartbeat turns into a
  :class:`CampaignPaused`/:class:`CampaignCancelled` at the next
  boundary; executors tear down on the way out (futures cancelled, pool
  workers terminated by the supervisor), so no workers leak.  These ride
  ``BaseException``, not ``Exception``, so task supervision and
  degrade-mode studies cannot swallow them.
* **Shared content-addressed store.**  All campaigns share one phase
  cache directory and one journal root; both are partitioned by config
  fingerprint, so equal-fingerprint campaigns deduplicate each other's
  work (observable as cache disk hits and journal replay hits in the
  per-campaign metrics) while quarantine stays namespaced per campaign.

Campaign states: ``queued → leased → running`` and from there to
``paused`` (resumable), ``cancelled``, ``done`` or ``failed``; a lease
expiry moves ``running → queued`` with ``restarts`` incremented.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import faults
from repro.core.chaos import artifact_digests
from repro.core.config import StudyConfig
from repro.core.engine import PhaseCache, config_fingerprint
from repro.core.study import Study
from repro.core.tasks import DEFAULT_RESTART_BUDGET, task_checkpoint
from repro.internet.population import PopulationConfig
from repro.net.errors import (
    ConfigError,
    OrchestratorBusyError,
    OrchestratorError,
    ReproError,
)
from repro.orchestrator.ledger import CampaignLedger

__all__ = [
    "CAMPAIGN_STATES",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "CampaignInterrupt",
    "CampaignPaused",
    "CampaignCancelled",
    "LeaseExpired",
    "CampaignSpec",
    "Campaign",
    "Orchestrator",
]

#: Every state a campaign can be recorded in.
CAMPAIGN_STATES: Tuple[str, ...] = (
    "queued", "leased", "running", "paused", "cancelled", "done", "failed",
)

#: States that occupy (or will occupy) a worker slot.
ACTIVE_STATES: Tuple[str, ...] = ("queued", "leased", "running")

#: States a campaign never leaves.
TERMINAL_STATES: Tuple[str, ...] = ("cancelled", "done", "failed")


class CampaignInterrupt(BaseException):
    """Cooperative control flow out of a running campaign.

    Deliberately **not** an :class:`Exception`: task supervision retries
    and wraps ``Exception`` into ``TaskFailure``, and a degrade-mode
    study swallows phase failures — a pause or cancel must ride above
    both, or it would be recorded as a task crash instead of obeyed.
    """


class CampaignPaused(CampaignInterrupt):
    """Raised at a task/phase boundary when a pause was requested."""


class CampaignCancelled(CampaignInterrupt):
    """Raised at a task/phase boundary when a cancel was requested."""


class LeaseExpired(CampaignInterrupt):
    """Raised when the campaign's heartbeat lease lapsed mid-run."""


@dataclass(frozen=True)
class CampaignSpec:
    """What one tenant asked the orchestrator to run.

    A deliberately small, JSON-round-trippable surface over
    :meth:`~repro.core.config.StudyConfig.quick`: enough to scale a
    campaign and place it in the queue.  ``priority`` schedules but does
    not fingerprint — two campaigns differing only in priority still
    share cached artifacts.
    """

    seed: int = 7
    scale: int = 4096
    honeypot_scale: int = 256
    shards: int = 4
    workers: int = 2
    retries: int = 2
    executor: str = "thread"
    priority: int = 0

    def to_config(
        self, journal_dir: str, quarantine_namespace: str = ""
    ) -> StudyConfig:
        """The full study config this spec stands for (shared-store form)."""
        config = StudyConfig.quick(seed=self.seed)
        config.population = PopulationConfig(
            seed=self.seed,
            scale=self.scale,
            honeypot_scale=self.honeypot_scale,
        )
        config.scan.shards = self.shards
        config.attacks.workers = self.workers
        config.telescope.workers = self.workers
        config.scan.retries = self.retries
        config.attacks.retries = self.retries
        config.telescope.retries = self.retries
        config.executor = self.executor
        for sub in (config.scan, config.attacks, config.telescope):
            sub.executor = self.executor
        config.journal_dir = journal_dir
        config.resume = True
        config.quarantine_namespace = quarantine_namespace
        config.validate()
        return config

    def fingerprint(self) -> str:
        """The content hash of the study this spec produces.

        Pure in the spec's *science* knobs: the deployment fields
        (journal dir, namespace, executor, workers, retries) are
        ``compare=False`` on the config and never reach the hash, so
        equal-fingerprint campaigns are exactly the ones whose artifacts
        are interchangeable.
        """
        return config_fingerprint(self.to_config(journal_dir="ignored"))

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown campaign spec field(s): {', '.join(sorted(unknown))}; "
                f"expected a subset of {', '.join(sorted(known))}"
            )
        try:
            return cls(**data)  # type: ignore[arg-type]
        except TypeError as error:
            raise ConfigError(f"bad campaign spec: {error}") from None


@dataclass
class Campaign:
    """One campaign's live scheduling state (the ledger's replayed view)."""

    id: str
    seq: int
    spec: CampaignSpec
    fingerprint: str
    state: str = "queued"
    restarts: int = 0
    #: Pending cooperative interrupt: ``"pause"``/``"cancel"``/``"expire"``.
    interrupt: Optional[str] = None
    #: Monotonic deadline of the current lease (meaningful while running).
    lease_deadline: float = 0.0
    reason: str = "submitted"
    error: Optional[str] = None
    digests: Dict[str, str] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)


class Orchestrator:
    """Durable scheduler for many concurrent studies over shared storage.

    Parameters
    ----------
    state_dir:
        Root of all durable state: the write-ahead ledger, the shared
        phase-cache directory and the shared journal root all live here.
        Reconstructing with the same directory resumes exactly where the
        previous incarnation stopped.
    max_active:
        Worker threads — campaigns running concurrently.
    max_campaigns:
        Admission cap on campaigns in non-terminal states; beyond it
        ``submit`` raises :class:`~repro.net.errors.OrchestratorBusyError`.
    lease_timeout:
        Seconds a running campaign's lease stays valid without a
        heartbeat renewal.
    restart_budget:
        Lease expiries (or crash recoveries) a campaign survives before
        it circuit-breaks to ``failed``.
    monitor_interval:
        The lease monitor's scan period (defaults to a quarter of the
        lease timeout).
    retry_after:
        The back-off hint carried by admission refusals.
    """

    def __init__(
        self,
        state_dir: os.PathLike,
        *,
        max_active: int = 2,
        max_campaigns: int = 8,
        lease_timeout: float = 30.0,
        restart_budget: int = DEFAULT_RESTART_BUDGET,
        monitor_interval: Optional[float] = None,
        retry_after: float = 30.0,
    ) -> None:
        if max_active < 1:
            raise ConfigError(f"max_active must be >= 1, got {max_active}")
        if max_campaigns < 1:
            raise ConfigError(
                f"max_campaigns must be >= 1, got {max_campaigns}"
            )
        if lease_timeout <= 0:
            raise ConfigError(
                f"lease_timeout must be > 0 seconds, got {lease_timeout}"
            )
        self.state_dir = os.path.expanduser(os.fspath(state_dir))
        self.max_active = max_active
        self.max_campaigns = max_campaigns
        self.lease_timeout = lease_timeout
        self.restart_budget = max(0, restart_budget)
        self.monitor_interval = (
            monitor_interval if monitor_interval is not None
            else max(0.05, lease_timeout / 4.0)
        )
        self.retry_after = retry_after
        os.makedirs(self.state_dir, exist_ok=True)
        self.ledger = CampaignLedger(os.path.join(self.state_dir, "ledger.log"))
        self.store_dir = os.path.join(self.state_dir, "store")
        self.cache_dir = os.path.join(self.store_dir, "cache")
        self.journal_dir = os.path.join(self.store_dir, "journals")
        self.campaigns: Dict[str, Campaign] = {}
        #: Submissions answered by an existing equal-fingerprint campaign.
        self.dedup_hits = 0
        #: Campaigns requeued because a previous incarnation died leased.
        self.recovered = 0
        self._heap: List[Tuple[int, int, str]] = []
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._closed = False
        self._stop = threading.Event()
        self._next_id = 1
        with self._lock:  # _transition notifies the work condition
            self._recover()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"orchestrator-worker-{index}",
                daemon=True,
            )
            for index in range(self.max_active)
        ]
        for thread in self._threads:
            thread.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="orchestrator-monitor", daemon=True
        )
        self._monitor.start()

    # -- durable state -----------------------------------------------------

    def _recover(self) -> None:
        """Rebuild the queue from the ledger (the crash-recovery path)."""
        for record in self.ledger.replay():
            rtype = record.get("type")
            if rtype == "submit":
                campaign_id = str(record.get("campaign"))
                spec = CampaignSpec.from_dict(dict(record.get("spec") or {}))
                self.campaigns[campaign_id] = Campaign(
                    id=campaign_id,
                    seq=int(record.get("seq", 0)),
                    spec=spec,
                    fingerprint=str(record.get("fingerprint", "")),
                )
                digits = campaign_id.lstrip("o")
                if digits.isdigit():
                    self._next_id = max(self._next_id, int(digits) + 1)
            elif rtype == "transition":
                campaign = self.campaigns.get(str(record.get("campaign")))
                if campaign is None:
                    continue  # transition for an unknown id: ignore
                campaign.state = str(record.get("state", campaign.state))
                campaign.restarts = int(
                    record.get("restarts", campaign.restarts)
                )
                campaign.reason = str(record.get("reason", campaign.reason))
                if record.get("error") is not None:
                    campaign.error = str(record["error"])
                if record.get("digests"):
                    campaign.digests = dict(record["digests"])
                if record.get("metrics"):
                    campaign.metrics = dict(record["metrics"])
        for campaign in sorted(
            self.campaigns.values(), key=lambda entry: entry.seq
        ):
            if campaign.state in ("leased", "running"):
                # The previous incarnation died holding this lease.
                campaign.restarts += 1
                if campaign.restarts > self.restart_budget:
                    self._transition(
                        campaign, "failed", reason="restart-budget",
                        error=(
                            f"circuit-broken after {campaign.restarts} "
                            "lease recoveries"
                        ),
                    )
                else:
                    self._transition(
                        campaign, "queued", reason="lease-recovered"
                    )
                    self.recovered += 1
            if campaign.state == "queued":
                heapq.heappush(self._heap, self._entry(campaign))

    def _entry(self, campaign: Campaign) -> Tuple[int, int, str]:
        # Max-priority first; submission order breaks ties.
        return (-campaign.spec.priority, campaign.seq, campaign.id)

    def _transition(
        self,
        campaign: Campaign,
        state: str,
        *,
        reason: str = "",
        error: Optional[str] = None,
        digests: Optional[Dict[str, str]] = None,
        metrics: Optional[Dict[str, object]] = None,
    ) -> None:
        """Ledger first, memory second (caller holds the lock)."""
        record: Dict[str, object] = {
            "type": "transition",
            "campaign": campaign.id,
            "state": state,
            "reason": reason,
            "restarts": campaign.restarts,
        }
        if error is not None:
            record["error"] = error
        if digests:
            record["digests"] = digests
        if metrics:
            record["metrics"] = metrics
        self.ledger.append(record)
        campaign.state = state
        campaign.reason = reason
        if error is not None:
            campaign.error = error
        if digests:
            campaign.digests = dict(digests)
        if metrics:
            campaign.metrics = dict(metrics)
        self._work.notify_all()

    # -- admission ---------------------------------------------------------

    def submit(self, spec: CampaignSpec, *, reuse: bool = False) -> str:
        """Admit one campaign; returns its id.

        ``reuse=True`` answers with an existing non-cancelled, non-failed
        campaign of equal config fingerprint instead of admitting a
        duplicate (counted in :attr:`dedup_hits`) — the idempotent shape
        a restart-and-resubmit client wants.  Admission is refused with
        :class:`~repro.net.errors.OrchestratorBusyError` once
        ``max_campaigns`` campaigns sit in non-terminal states.
        """
        fingerprint = spec.fingerprint()
        with self._work:
            if self._closed:
                raise OrchestratorError(
                    "orchestrator is shut down; cannot submit"
                )
            if reuse:
                for campaign in sorted(
                    self.campaigns.values(), key=lambda entry: entry.seq
                ):
                    if (campaign.fingerprint == fingerprint
                            and campaign.state not in ("cancelled", "failed")):
                        self.dedup_hits += 1
                        return campaign.id
            admitted = sum(
                1 for campaign in self.campaigns.values()
                if campaign.state not in TERMINAL_STATES
            )
            if admitted >= self.max_campaigns:
                raise OrchestratorBusyError(
                    f"admission refused: {admitted} campaign(s) already "
                    f"admitted (max_campaigns={self.max_campaigns})",
                    retry_after=self.retry_after,
                )
            campaign_id = f"o{self._next_id}"
            self._next_id += 1
            seq = self.ledger.append({
                "type": "submit",
                "campaign": campaign_id,
                "spec": spec.to_dict(),
                "priority": spec.priority,
                "fingerprint": fingerprint,
            })
            campaign = Campaign(
                id=campaign_id, seq=seq, spec=spec, fingerprint=fingerprint,
            )
            self.campaigns[campaign_id] = campaign
            heapq.heappush(self._heap, self._entry(campaign))
            self._work.notify()
            return campaign_id

    # -- lifecycle controls ------------------------------------------------

    def _require(self, campaign_id: str) -> Campaign:
        campaign = self.campaigns.get(campaign_id)
        if campaign is None:
            raise OrchestratorError(f"unknown campaign {campaign_id!r}")
        return campaign

    def pause(self, campaign_id: str) -> Dict[str, object]:
        """Pause: immediate for queued, drained at the next boundary when
        running.  Returns the campaign's status document."""
        with self._work:
            campaign = self._require(campaign_id)
            if campaign.state == "queued":
                self._transition(campaign, "paused", reason="pause-requested")
            elif campaign.state in ("leased", "running"):
                campaign.interrupt = "pause"
            elif campaign.state != "paused":
                raise OrchestratorError(
                    f"campaign {campaign_id} is {campaign.state}; "
                    "only queued or running campaigns can pause"
                )
            return self.status(campaign_id)

    def resume(self, campaign_id: str) -> Dict[str, object]:
        """Resume a paused campaign (it requeues and continues from its
        journals, byte-identically).  Also clears a not-yet-drained
        pause request."""
        with self._work:
            campaign = self._require(campaign_id)
            if (campaign.state in ("leased", "running")
                    and campaign.interrupt == "pause"):
                campaign.interrupt = None  # pause never drained; undo it
            elif campaign.state == "paused":
                self._transition(campaign, "queued", reason="resumed")
                heapq.heappush(self._heap, self._entry(campaign))
                self._work.notify()
            elif campaign.state not in ACTIVE_STATES:
                raise OrchestratorError(
                    f"campaign {campaign_id} is {campaign.state}; "
                    "only paused campaigns can resume"
                )
            return self.status(campaign_id)

    def cancel(self, campaign_id: str) -> Dict[str, object]:
        """Cancel: immediate for queued/paused, torn down at the next
        boundary when running.  Terminal campaigns are left alone."""
        with self._work:
            campaign = self._require(campaign_id)
            if campaign.state in ("queued", "paused"):
                self._transition(
                    campaign, "cancelled", reason="cancel-requested"
                )
            elif campaign.state in ("leased", "running"):
                campaign.interrupt = "cancel"
            return self.status(campaign_id)

    # -- status ------------------------------------------------------------

    def get(self, campaign_id: str) -> Optional[Campaign]:
        with self._lock:
            return self.campaigns.get(campaign_id)

    def status(self, campaign_id: str) -> Dict[str, object]:
        """One campaign's status document (the HTTP/CLI shape)."""
        with self._lock:
            campaign = self._require(campaign_id)
            state = campaign.state
            if state in ("leased", "running") and campaign.interrupt:
                state = {
                    "pause": "pausing",
                    "cancel": "cancelling",
                    "expire": "expiring",
                }[campaign.interrupt]
            return {
                "id": campaign.id,
                "state": state,
                "recorded_state": campaign.state,
                "priority": campaign.spec.priority,
                "restarts": campaign.restarts,
                "fingerprint": campaign.fingerprint,
                "spec": campaign.spec.to_dict(),
                "reason": campaign.reason,
                "error": campaign.error,
                "digests": dict(campaign.digests),
                "metrics": dict(campaign.metrics),
            }

    def queue(self) -> Dict[str, object]:
        """The whole queue: ids grouped by state, scheduling order, knobs."""
        with self._lock:
            by_state: Dict[str, List[str]] = {
                state: [] for state in CAMPAIGN_STATES
            }
            for campaign in sorted(
                self.campaigns.values(), key=lambda entry: entry.seq
            ):
                by_state[campaign.state].append(campaign.id)
            order = sorted(
                (campaign for campaign in self.campaigns.values()
                 if campaign.state == "queued"),
                key=self._entry,
            )
            return {
                "max_active": self.max_active,
                "max_campaigns": self.max_campaigns,
                "lease_timeout": self.lease_timeout,
                "restart_budget": self.restart_budget,
                "campaigns": by_state,
                "order": [campaign.id for campaign in order],
                "dedup_hits": self.dedup_hits,
                "recovered": self.recovered,
                "ledger_records": len(self.ledger),
                "ledger_quarantined": len(self.ledger.quarantined),
                "store": {
                    "cache_dir": self.cache_dir,
                    "journal_dir": self.journal_dir,
                },
            }

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no campaign is queued/leased/running (or timeout).

        Paused campaigns do not hold a drain open — they are stable and
        resumable across process restarts.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._work:
            while any(
                campaign.state in ACTIVE_STATES
                for campaign in self.campaigns.values()
            ):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._work.wait(remaining)
            return True

    def shutdown(
        self, *, cancel_running: bool = False, timeout: Optional[float] = None
    ) -> None:
        """Stop scheduling and join the worker threads.

        Running campaigns finish (their durable state survives either
        way) unless ``cancel_running`` asks for cooperative teardown at
        the next boundary.
        """
        with self._work:
            if self._closed:
                return
            self._closed = True
            if cancel_running:
                for campaign in self.campaigns.values():
                    if campaign.state in ("leased", "running"):
                        campaign.interrupt = "cancel"
            self._work.notify_all()
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._monitor.join(timeout)

    # -- execution ---------------------------------------------------------

    def _pop_queued(self) -> Optional[Campaign]:
        """Highest-priority queued campaign (lazy-deleting stale entries)."""
        while self._heap:
            _, _, campaign_id = heapq.heappop(self._heap)
            campaign = self.campaigns.get(campaign_id)
            if campaign is not None and campaign.state == "queued":
                return campaign
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._work:
                campaign = self._pop_queued()
                while campaign is None and not self._closed:
                    self._work.wait()
                    campaign = self._pop_queued()
                if campaign is None:
                    return  # closed and nothing runnable
                campaign.interrupt = None
                campaign.lease_deadline = (
                    time.monotonic() + self.lease_timeout
                )
                self._transition(campaign, "leased", reason="scheduled")
            self._run_campaign(campaign)

    def _heartbeat(self, campaign: Campaign) -> None:
        """The task/phase-boundary hook: obey interrupts, renew the lease.

        Renewal is suppressed while a ``lease.expire`` verdict fires for
        this lease incarnation — keyed ``(campaign, restarts)``, one
        verdict per lease, so an expired-and-requeued campaign draws a
        fresh fate instead of expiring forever.
        """
        request = campaign.interrupt
        if request == "pause":
            raise CampaignPaused(campaign.id)
        if request == "cancel":
            raise CampaignCancelled(campaign.id)
        if request == "expire":
            raise LeaseExpired(campaign.id)
        now = time.monotonic()
        injector = faults.active()
        suppressed = (
            injector is not None
            and injector.would_fail(
                "lease.expire", campaign.id, campaign.restarts
            ) is not None
        )
        if suppressed:
            if now >= campaign.lease_deadline:
                raise LeaseExpired(campaign.id)
            return
        campaign.lease_deadline = now + self.lease_timeout

    def _run_campaign(self, campaign: Campaign) -> None:
        """One lease: run the study, translate the outcome to a state."""
        config = campaign.spec.to_config(
            self.journal_dir, quarantine_namespace=campaign.id
        )
        cache = PhaseCache(
            directory=self.cache_dir, quarantine_namespace=campaign.id
        )
        study = Study(config, cache=cache)
        study.engine.on_phase = lambda metric: self._heartbeat(campaign)
        with self._work:
            self._transition(campaign, "running", reason="leased")
        state: str
        reason: str
        error: Optional[str] = None
        digests: Optional[Dict[str, str]] = None
        try:
            with task_checkpoint(lambda: self._heartbeat(campaign)):
                results = study.run()
            digests = artifact_digests(results)
            state, reason = "done", "completed"
        except CampaignPaused:
            state, reason = "paused", "pause-drained"
        except CampaignCancelled:
            state, reason = "cancelled", "cancel-drained"
        except LeaseExpired:
            state, reason = "queued", "lease-expired"
        except ReproError as failure:
            state, reason = "failed", "error"
            error = f"{type(failure).__name__}: {failure}"
        except Exception as failure:  # noqa: BLE001 — the circuit breaker
            state, reason = "failed", "error"
            error = f"{type(failure).__name__}: {failure}"
        if cache.quarantined:
            study.metrics.record_quarantines(cache.quarantined)
        summary = study.metrics.summary()
        with self._work:
            campaign.interrupt = None
            if state == "queued":
                campaign.restarts += 1
                if campaign.restarts > self.restart_budget:
                    self._transition(
                        campaign, "failed", reason="restart-budget",
                        error=(
                            f"circuit-broken after {campaign.restarts} "
                            "lease expiries"
                        ),
                        metrics=summary,
                    )
                    return
                self._transition(
                    campaign, "queued", reason=reason, metrics=summary
                )
                heapq.heappush(self._heap, self._entry(campaign))
                self._work.notify()
                return
            self._transition(
                campaign, state, reason=reason, error=error,
                digests=digests, metrics=summary,
            )

    def _expire_leases(self) -> int:
        """Flag running campaigns whose lease lapsed (monitor duty).

        Cooperative: the flag turns into :class:`LeaseExpired` at the
        campaign's next boundary.  Returns how many were flagged.
        """
        flagged = 0
        with self._lock:
            now = time.monotonic()
            for campaign in self.campaigns.values():
                if (campaign.state in ("leased", "running")
                        and campaign.interrupt is None
                        and now >= campaign.lease_deadline):
                    campaign.interrupt = "expire"
                    flagged += 1
        return flagged

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.monitor_interval):
            self._expire_leases()
