"""Censys IoT-label model — the §5.3 device-identification extension.

"The Censys database has a labelled dataset of IoT devices and returns an
'iot' tag if the IP address was identified as an IoT device from its
periodic Internet-wide scans."  The paper found 1,671 additional infected
IoT devices this way, mostly cameras, routers and IP phones.

Our store is built from the population's device ground truth — which is
fair: Censys's labels come from its own scans of the same Internet — with
an imperfect coverage rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.internet.population import Population
from repro.net.prng import RandomStream
from repro.scanner.datasets import CENSYS_IOT_TYPES

__all__ = ["CensysIotDB"]


@dataclass
class CensysIotDB:
    """IP → IoT device-type tags, as Censys search would return them."""

    tags: Dict[int, str] = field(default_factory=dict)

    @classmethod
    def build_from(
        cls,
        population: Population,
        seed: int = 7,
        *,
        coverage: float = 0.95,
    ) -> "CensysIotDB":
        """Label IoT-typed population hosts with Censys-style coverage."""
        stream = RandomStream(seed, "intel.censys")
        table: Dict[int, str] = {}
        for host in population.hosts:
            if host.is_honeypot:
                continue
            if host.device_type in CENSYS_IOT_TYPES and stream.bernoulli(coverage):
                table[host.address] = host.device_type
        return cls(tags=table)

    def iot_tag(self, address: int) -> Optional[str]:
        """The device type when Censys tags the address as IoT."""
        return self.tags.get(address)

    def is_iot(self, address: int) -> bool:
        """True when the address carries an ``iot`` tag."""
        return address in self.tags

    def iot_subset(self, addresses: Iterable[int]) -> List[Tuple[int, str]]:
        """(address, device type) for every tagged address in the input."""
        return [
            (address, self.tags[address])
            for address in addresses
            if address in self.tags
        ]

    def iot_hosts(self, database) -> List[Tuple[int, str]]:
        """Tagged (address, device type) pairs for a scan database's hosts.

        Accepts a :class:`~repro.scanner.records.ScanDatabase`; addresses
        come back sorted so the join is deterministic.
        """
        return self.iot_subset(sorted(database.unique_hosts()))
