"""GreyNoise model — the Figure 5 cross-validation partner.

GreyNoise classifies sources it has observed on *its own* sensor fleet into
benign / malicious / unknown.  The paper's key finding in Figure 5 is the
gap: 2,023 addresses the paper identified as scanning services were *not*
identified by GreyNoise, with the gap widest for AMQP, Telnet and MQTT
(attributed to Europe-focused cyber-risk-rating platforms GreyNoise's
sensors do not see).

We model the database as built from the simulation's ground truth with a
deliberate per-service visibility limit: regional/boutique services have a
high miss probability, the global ones a low one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.attacks.actors import ActorRegistry
from repro.core.taxonomy import TrafficClass
from repro.net.prng import RandomStream

__all__ = ["GreyNoiseDB", "REGIONAL_SERVICES"]

#: Services whose sensors GreyNoise plausibly never sees (Europe-focused
#: risk raters, §4.3.3) — their sources are usually misses.
REGIONAL_SERVICES = frozenset(
    {"Bitsight", "Alpha Strike Labs", "Sharashka", "RWTH Aachen",
     "CriminalIP", "Quadmetrics"}
)

#: GreyNoise verdict labels.
BENIGN = "benign"
MALICIOUS = "malicious"
UNKNOWN = "unknown"


@dataclass
class GreyNoiseDB:
    """Query-only classification store."""

    classifications: Dict[int, str] = field(default_factory=dict)

    @classmethod
    def build_from(
        cls,
        registry: ActorRegistry,
        seed: int = 7,
        *,
        regional_miss_rate: float = 0.85,
        global_miss_rate: float = 0.06,
        malicious_known_rate: float = 0.80,
    ) -> "GreyNoiseDB":
        """Populate the database from the actor ledger, with miss rates."""
        stream = RandomStream(seed, "intel.greynoise")
        table: Dict[int, str] = {}
        for info in registry:
            if info.traffic_class == TrafficClass.SCANNING_SERVICE:
                miss_rate = (
                    regional_miss_rate
                    if info.service_name in REGIONAL_SERVICES
                    else global_miss_rate
                )
                if not stream.bernoulli(miss_rate):
                    table[info.address] = BENIGN
            elif info.traffic_class == TrafficClass.MALICIOUS:
                if stream.bernoulli(malicious_known_rate):
                    table[info.address] = MALICIOUS
            else:
                if stream.bernoulli(0.3):
                    table[info.address] = UNKNOWN
        return cls(classifications=table)

    def classification(self, address: int) -> Optional[str]:
        """GreyNoise verdict, or None when the address is unseen."""
        return self.classifications.get(address)

    def benign_sources(self) -> Set[int]:
        """Addresses GreyNoise calls benign (its scanning services)."""
        return {
            address for address, verdict in self.classifications.items()
            if verdict == BENIGN
        }

    def count_benign(self, addresses: Iterable[int]) -> int:
        """How many of ``addresses`` GreyNoise recognises as benign."""
        return sum(
            1 for address in addresses
            if self.classifications.get(address) == BENIGN
        )
