"""Threat-intelligence stores: GreyNoise, VirusTotal, Censys-IoT, ExoneraTor."""

from repro.intel.censysiot import CensysIotDB
from repro.intel.exonerator import ExoneraTorDB
from repro.intel.greynoise import REGIONAL_SERVICES, GreyNoiseDB
from repro.intel.virustotal import VirusTotalDB

__all__ = [
    "CensysIotDB",
    "ExoneraTorDB",
    "GreyNoiseDB",
    "REGIONAL_SERVICES",
    "VirusTotalDB",
]
