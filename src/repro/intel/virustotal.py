"""VirusTotal model — hash, IP and URL reputation (Figure 6, Table 13).

The paper uses VirusTotal three ways:

* **binary hashes** from honeypot payloads are looked up to name malware
  families (Table 13's corpus);
* **source IPs** of unknown/suspicious traffic are checked; "we consider
  the IP to be a malicious actor if there is at least one security vendor
  to label them as malicious" — Figure 6 plots the malicious percentage per
  protocol, honeypot (H) vs telescope (T), with SMB highest;
* **URLs** discovered via reverse DNS are checked (346 of the 427 webpages
  were flagged).

The store is populated from ground truth with vendor-count noise: infected
misconfigured devices are always flagged (§5.3 says all 11,118 were),
malware-dropping bots nearly always, plain scanners rarely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.attacks.actors import ActorRegistry
from repro.attacks.malware import MalwareCorpus
from repro.core.taxonomy import TrafficClass
from repro.net.prng import RandomStream
from repro.net.rdns import ReverseDns

__all__ = ["VirusTotalDB"]


@dataclass
class VirusTotalDB:
    """Reputation store keyed by IP, hash and URL."""

    ip_positives: Dict[int, int] = field(default_factory=dict)
    hash_families: Dict[str, str] = field(default_factory=dict)
    malicious_urls: Set[str] = field(default_factory=set)

    @classmethod
    def build_from(
        cls,
        registry: ActorRegistry,
        corpus: MalwareCorpus,
        rdns: Optional[ReverseDns] = None,
        seed: int = 7,
        *,
        dropper_flag_rate: float = 0.97,
        malicious_flag_rate: float = 0.72,
        unknown_flag_rate: float = 0.25,
        scanner_flag_rate: float = 0.04,
    ) -> "VirusTotalDB":
        """Populate from the ledger, the malware corpus and the rDNS zone."""
        stream = RandomStream(seed, "intel.virustotal")
        db = cls()
        for sample in corpus.samples:
            db.hash_families[sample.sha256] = sample.family
        for info in registry:
            if info.infected_misconfigured or info.censys_iot:
                # §5.3: every intersected infected device was flagged by at
                # least one vendor.
                db.ip_positives[info.address] = stream.randint(1, 12)
            elif info.malware_families:
                if stream.bernoulli(dropper_flag_rate):
                    db.ip_positives[info.address] = stream.randint(2, 30)
            elif info.traffic_class == TrafficClass.MALICIOUS:
                if stream.bernoulli(malicious_flag_rate):
                    db.ip_positives[info.address] = stream.randint(1, 8)
            elif info.traffic_class == TrafficClass.UNKNOWN:
                if stream.bernoulli(unknown_flag_rate):
                    db.ip_positives[info.address] = stream.randint(1, 3)
            else:
                if stream.bernoulli(scanner_flag_rate):
                    db.ip_positives[info.address] = 1
        if rdns is not None:
            for domain in rdns.domains():
                record = rdns.record(domain)
                if record and record.serves_malware:
                    db.malicious_urls.add(f"http://{domain}/")
        return db

    # -- query API ---------------------------------------------------------

    def positives(self, address: int) -> int:
        """Vendor count flagging one IP (0 = clean/unseen)."""
        return self.ip_positives.get(address, 0)

    def is_malicious_ip(self, address: int) -> bool:
        """The paper's rule: at least one vendor flags it."""
        return self.positives(address) >= 1

    def malicious_fraction(self, addresses: Iterable[int]) -> float:
        """Share of ``addresses`` with at least one vendor flag."""
        total = flagged = 0
        for address in addresses:
            total += 1
            if self.is_malicious_ip(address):
                flagged += 1
        return flagged / total if total else 0.0

    def lookup_hash(self, sha256: str) -> Optional[str]:
        """Malware family of a known binary hash."""
        return self.hash_families.get(sha256)

    def is_malicious_url(self, url: str) -> bool:
        """URL reputation verdict."""
        return url in self.malicious_urls
