"""ExoneraTor model — Tor relay lookups for the HTTP-attack analysis.

"Upon performing a reverse lookup of the attack sources with the Exonerator
service we determine a total of 151 unique IPs originating from Tor relays"
(Section 5.1.6).  The store answers the single question the paper asks:
was this address a Tor relay during the observation window?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Set

from repro.attacks.actors import ActorRegistry

__all__ = ["ExoneraTorDB"]


@dataclass
class ExoneraTorDB:
    """Known Tor relay addresses for the observation month."""

    relays: Set[int] = field(default_factory=set)

    @classmethod
    def build_from(cls, registry: ActorRegistry) -> "ExoneraTorDB":
        """Collect the ledger's Tor-exit sources (ExoneraTor's records are
        authoritative for relays, so no miss model is applied)."""
        return cls(
            relays={info.address for info in registry if info.tor_exit}
        )

    def was_tor_relay(self, address: int) -> bool:
        """True when the address served as a relay in the window."""
        return address in self.relays

    def count_relays(self, addresses: Iterable[int]) -> int:
        """How many of ``addresses`` were Tor relays."""
        return sum(1 for address in addresses if address in self.relays)
