"""Command-line interface: ``python -m repro <command>``.

Commands mirror the study phases so a shell user can reproduce any single
experiment without writing Python:

* ``run``        — the full eight-phase study, printing every table;
* ``scan``       — scan + fingerprint + classify (Tables 4/5/6/10, Fig 2);
* ``attacks``    — the honeypot month (Table 7, Figures 7/8/9);
* ``telescope``  — the darknet capture (Table 8) with optional FlowTuple
  export;
* ``intersect``  — the §5.3 infected-host join;
* ``validate``   — run the cross-plane structural invariants
  (:mod:`repro.core.validate`) over the study artifacts, reporting any
  violation and exiting 5;
* ``serve``      — the streaming campaign service
  (:mod:`repro.stream`): an HTTP control surface to start paced
  campaigns, poll status, and tail live events/alerts as SSE.  SIGTERM
  or SIGINT drain active campaigns and SSE clients, then exit 0;
* ``chaos``      — the seeded chaos soak (:mod:`repro.core.chaos`): run
  a campaign under a randomized fault plan spanning every injection
  site (worker kills and hangs included), let the supervisors recover,
  and assert the artifacts byte-match a fault-free run and pass the
  validate invariants;
* ``orchestrate`` — the durable multi-campaign orchestrator
  (:mod:`repro.orchestrator`): submit one campaign per ``--seeds``
  entry into a crash-safe write-ahead ledger under ``--state-dir``,
  run them over a bounded lease-based worker pool, and print the final
  queue.  Re-running with the same state dir replays the ledger and
  resumes interrupted campaigns from their task journals,
  byte-identically.

All commands accept ``--seed`` and the scale knobs, so campaigns are
reproducible from the shell line alone, plus the engine knobs:
``--threads`` (parallel phase execution — same bytes out, less wall time),
``--shards K`` (concurrent scan shards per protocol sweep — also byte
identical for every K, with per-shard timings in the metrics),
``--attack-workers K`` (concurrent (honeypot, day) / (protocol, day)
generation tasks for the attack and telescope months — byte identical for
every K, with per-task timings in the metrics), ``--executor
{thread,process,auto}`` (what runs those task batches — ``process`` fans
striped chunks out to worker processes for the months and scan shards,
byte-identical to ``thread``; ``auto``, the default, picks per machine),
``--backend
{python,numpy,auto}`` (column backend for the three plane stores —
``numpy`` batch-draws and vectorizes the hot loops, byte-identical to
``python``; ``auto``, the default, picks numpy when the optional
dependency is importable), ``--cache-dir PATH`` (persistent on-disk phase
cache shared across invocations), ``--no-cache``, and ``--metrics-json
PATH`` (per-phase wall time, cache hits, shard/task timings, store
backends and throughput as JSON, for scripted campaigns).

Robustness knobs (all byte-identity preserving):

* ``--retries N`` — retry transiently-failed supervised tasks up to N
  times (tasks are pure functions of derived PRNG keys, so a retry is
  byte-identical to an undisturbed first run);
* ``--fail-policy {abort,degrade}`` — whether a failing *optional* phase
  (sonar/shodan vantage, intel enrichment) aborts the study or is
  recorded as ``degraded`` in the metrics while the study completes;
* ``--resume`` — replay the per-task completion journal a previous
  interrupted invocation left under ``--cache-dir``, re-executing only
  unfinished tasks (output byte-identical to an uninterrupted run);
* ``--task-deadline SOFT[:HARD]`` — per-task wall-time supervision in
  seconds: overrunning SOFT records a stall warning in the metrics;
  overrunning HARD retries the task as a transient fault (byte-identical
  on the attack/telescope planes — tasks are pure functions of derived
  PRNG keys);
* ``--inject-faults SPEC`` — deterministic seeded fault injection for
  testing the above: comma-separated ``site[@plane]:rate[:kind][:delay]``
  rules over the sites ``task``, ``cache.io``, ``store.corrupt``
  (bit-flips journal/cache blobs, proving envelope quarantine),
  ``deadline`` (injects task delays of ``delay`` seconds),
  ``fabric.connect``, ``dataset.load``, ``worker.crash`` (a pool worker
  calls ``os._exit``, driving the supervisor's pool rebuild),
  ``worker.hang`` (a pool worker sleeps ``delay`` seconds, driving the
  no-progress watchdog), ``ledger.io`` (orchestrator ledger appends
  fail, driving the bounded-retry path) and ``lease.expire`` (an
  orchestrator campaign's lease heartbeat is suppressed, driving the
  requeue-and-resume path); an ``@plane`` suffix scopes a rule to one
  measurement plane's task keys.

Exit codes are stable for shell scripting and defined once as
:class:`repro.core.errors.ExitCode`: 0 on success, 2 for an invalid
configuration (:class:`~repro.net.errors.ConfigError`; argparse usage
errors also exit 2), 3 for a phase-ordering violation
(:class:`~repro.net.errors.PhaseOrderError`), 4 for a failed supervised
task or unhandled injected fault (:class:`~repro.net.errors.TaskFailure`,
:class:`~repro.net.errors.FaultError`), 5 when ``validate`` finds a
structural invariant violated, 6 when ``serve`` cannot start or the
streaming service fails (:class:`~repro.net.errors.ServeError`), 7 when
``orchestrate`` ends with a failed campaign or the orchestrator's
durable state cannot be written or recovered
(:class:`~repro.net.errors.OrchestratorError`).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro import Study, StudyConfig, __version__
from repro.attacks.schedule import AttackScheduleConfig
from repro.core import faults
from repro.core.columns import resolve_backend
from repro.core.engine import PhaseCache
from repro.core.faults import FaultPlan
from repro.core.report import (
    render_case_studies,
    render_figure2,
    render_figure7,
    render_figure8,
    render_figure9,
    render_intersection,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
    render_table10,
)
from repro.core.errors import ExitCode
from repro.internet.population import PopulationConfig
from repro.net.errors import (
    ConfigError,
    FaultError,
    OrchestratorError,
    PhaseOrderError,
    ServeError,
    TaskFailure,
    ValidationError,
)

__all__ = ["main", "build_parser"]

#: Exit codes, stable across releases.  The canonical definition is
#: :class:`repro.core.errors.ExitCode`; these module-level aliases keep
#: the pre-1.3 spelling (``from repro.cli import EXIT_CONFIG``) working.
EXIT_OK = ExitCode.OK
EXIT_CONFIG = ExitCode.CONFIG
EXIT_PHASE_ORDER = ExitCode.PHASE_ORDER
EXIT_TASK_FAILURE = ExitCode.TASK_FAILURE
EXIT_VALIDATION = ExitCode.VALIDATION
EXIT_SERVE = ExitCode.SERVE
EXIT_ORCHESTRATOR = ExitCode.ORCHESTRATOR


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Open for hire' (IMC 2021) on a simulated Internet."
        ),
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub):
        sub.add_argument("--seed", type=int, default=7,
                         help="study seed (default 7)")
        sub.add_argument("--quick", action="store_true",
                         help="coarse scales for a ~1s run")
        sub.add_argument("--threads", action="store_true",
                         help="run independent phases on a thread pool "
                              "(byte-identical output, less wall time)")
        sub.add_argument("--shards", type=int, default=1, metavar="K",
                         help="concurrent address shards per protocol scan "
                              "(byte-identical output for every K; "
                              "default 1)")
        sub.add_argument("--attack-workers", type=int, default=1,
                         metavar="K",
                         help="concurrent (honeypot, day) / (protocol, day) "
                              "workers for the attack and telescope months "
                              "(byte-identical output for every K; "
                              "default 1)")
        sub.add_argument("--executor", default="auto",
                         metavar="{thread,process,auto}",
                         help="task executor for the sharded planes: "
                              "'process' fans (honeypot, day) / "
                              "(protocol, day) / scan-shard chunks out to "
                              "worker processes (byte-identical output), "
                              "'thread' keeps them on the in-process pool, "
                              "'auto' (default) picks per machine")
        sub.add_argument("--backend", default="auto",
                         metavar="{python,numpy,auto}",
                         help="column backend for the plane stores: "
                              "'numpy' vectorizes the hot loops "
                              "(byte-identical output), 'python' forces "
                              "the pure-Python oracle, 'auto' (default) "
                              "picks numpy when importable")
        sub.add_argument("--no-cache", action="store_true",
                         help="disable phase-artifact memoization")
        sub.add_argument("--cache-dir", metavar="PATH", default="",
                         help="persist phase artifacts to PATH so repeated "
                              "invocations reuse the world/scan phases")
        sub.add_argument("--metrics-json", metavar="PATH", default="",
                         help="write per-phase wall time, cache hits and "
                              "rates as JSON to PATH ('-' for stdout)")
        sub.add_argument("--retries", type=int, default=0, metavar="N",
                         help="retry transiently-failed supervised tasks "
                              "up to N times (byte-identical output; "
                              "default 0)")
        sub.add_argument("--fail-policy", choices=("abort", "degrade"),
                         default="abort",
                         help="what a failing optional phase does: abort "
                              "the study (default) or record the phase as "
                              "degraded and continue")
        sub.add_argument("--resume", action="store_true",
                         help="replay the per-task completion journal of a "
                              "previous interrupted run (requires "
                              "--cache-dir; output is byte-identical to an "
                              "uninterrupted run)")
        sub.add_argument("--task-deadline", metavar="SOFT[:HARD]",
                         default="",
                         help="per-task wall-time supervision in seconds: "
                              "overrunning SOFT records a stall warning "
                              "in the metrics, overrunning HARD retries "
                              "the task as a transient fault")
        sub.add_argument("--inject-faults", metavar="SPEC", default="",
                         help="deterministic fault injection for testing: "
                              "comma-separated "
                              "site[@plane]:rate[:kind][:delay] rules "
                              "(sites: task, cache.io, store.corrupt, "
                              "deadline, fabric.connect, dataset.load, "
                              "worker.crash, worker.hang, ledger.io, "
                              "lease.expire)")

    run = subparsers.add_parser("run", help="full study, all tables")
    add_common(run)

    scan = subparsers.add_parser(
        "scan", help="scan + fingerprint + classify phases only"
    )
    add_common(scan)
    scan.add_argument("--scale", type=int, default=None,
                      help="population scale divisor (default per config)")
    scan.add_argument("--eu-blocklist", action="store_true",
                      help="apply the FireHOL-style Europe blocklist")
    scan.add_argument("--export", metavar="PATH", default="",
                      help="write merged scan rows as JSONL")

    attacks = subparsers.add_parser(
        "attacks", help="the honeypot month only"
    )
    add_common(attacks)
    attacks.add_argument("--attack-scale", type=int, default=None,
                         help="event scale divisor (default per config)")
    attacks.add_argument("--days", type=int, default=30,
                         help="observation days (default 30)")

    telescope = subparsers.add_parser(
        "telescope", help="the darknet capture only"
    )
    add_common(telescope)
    telescope.add_argument("--export-day", type=int, default=None,
                           metavar="DAY",
                           help="print the FlowTuple lines of one day")

    intersect = subparsers.add_parser(
        "intersect", help="the §5.3 infected-host join"
    )
    add_common(intersect)

    validate = subparsers.add_parser(
        "validate",
        help="run the cross-plane structural invariants over the study "
             "artifacts (exit 5 on violation)",
    )
    add_common(validate)

    serve = subparsers.add_parser(
        "serve",
        help="run the streaming campaign control API "
             "(POST /sim/start, GET /campaigns/<id>/status|tail)",
    )
    add_common(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port; 0 picks an ephemeral port "
                            "(default 8765)")
    serve.add_argument("--events-per-second", type=float, default=0.0,
                       metavar="EPS",
                       help="default replay pacing for started campaigns "
                            "(0 = unpaced; per-request override via the "
                            "/sim/start body)")
    serve.add_argument("--batch-size", type=int, default=256, metavar="N",
                       help="default rows per operator batch (any value "
                            "yields identical final snapshots; default "
                            "256)")
    serve.add_argument("--publish-policy", default="block",
                       metavar="{block,drop_oldest,latest}",
                       help="bus overload policy when --queue-capacity "
                            "bounds publishing: 'block' applies "
                            "backpressure (lossless, default), "
                            "'drop_oldest'/'latest' shed batches with "
                            "overflow accounting")
    serve.add_argument("--queue-capacity", type=int, default=0,
                       metavar="N",
                       help="bound the bus publish queue at N batches "
                            "(0 = synchronous in-thread delivery; "
                            "default 0)")
    serve.add_argument("--max-campaigns", type=int, default=None,
                       metavar="N",
                       help="reject /sim/start with 503 + Retry-After "
                            "once N campaigns are active (default: "
                            "unlimited)")
    serve.add_argument("--stall-timeout", type=float, default=0.0,
                       metavar="SECONDS",
                       help="campaign watchdog: alert and flag 'stalled' "
                            "after this many seconds without progress "
                            "(0 disables; default 0)")

    chaos = subparsers.add_parser(
        "chaos",
        help="seeded chaos soak: run a campaign under randomized faults "
             "at every site (worker kills and hangs included) and assert "
             "byte-identity with a fault-free run (exit 5 on divergence)",
    )
    chaos.add_argument("--seed", type=int, default=7,
                       help="study seed (default 7)")
    chaos.add_argument("--fault-seed", type=int, default=93,
                       help="seed of the randomized fault plan "
                            "(default 93)")
    chaos.add_argument("--scale", type=int, default=4096,
                       help="population scale divisor for the soaked "
                            "campaign (default 4096)")
    chaos.add_argument("--workers", type=int, default=4, metavar="K",
                       help="process-pool workers for the soaked run "
                            "(default 4)")
    chaos.add_argument("--retries", type=int, default=3, metavar="N",
                       help="supervised-task retries during the soak "
                            "(default 3)")
    chaos.add_argument("--restart-budget", type=int, default=3,
                       metavar="N",
                       help="pool rebuilds before the supervisor "
                            "downgrades to the thread executor "
                            "(default 3)")
    chaos.add_argument("--hang-timeout", type=float, default=5.0,
                       metavar="SECONDS",
                       help="pool no-progress watchdog window "
                            "(default 5.0)")
    chaos.add_argument("--faults", metavar="SPEC", default="",
                       help="override the soak's fault plan (same grammar "
                            "as --inject-faults; default: a plan spanning "
                            "every site)")
    chaos.add_argument("--metrics-json", metavar="PATH", default="",
                       help="write the soaked run's metrics (supervisor "
                            "and bus rows included) as JSON to PATH "
                            "('-' for stdout)")

    orchestrate = subparsers.add_parser(
        "orchestrate",
        help="run one campaign per --seeds entry over the durable "
             "orchestrator: crash-safe ledger under --state-dir, "
             "lease-based workers, byte-identical resume on restart "
             "(exit 7 on a failed campaign)",
    )
    orchestrate.add_argument("--state-dir", metavar="DIR", required=True,
                             help="durable orchestrator state: the "
                                  "write-ahead ledger plus the shared "
                                  "content-addressed artifact store "
                                  "(re-running with the same DIR resumes "
                                  "interrupted campaigns)")
    orchestrate.add_argument("--seeds", metavar="S1,S2,...", default="7",
                             help="comma-separated study seeds; one "
                                  "campaign is submitted per seed "
                                  "(default 7)")
    orchestrate.add_argument("--scale", type=int, default=4096,
                             help="population scale divisor per campaign "
                                  "(default 4096)")
    orchestrate.add_argument("--honeypot-scale", type=int, default=256,
                             help="honeypot scale divisor per campaign "
                                  "(default 256)")
    orchestrate.add_argument("--shards", type=int, default=4, metavar="K",
                             help="scan shards per campaign (default 4)")
    orchestrate.add_argument("--workers", type=int, default=2, metavar="K",
                             help="attack/telescope workers per campaign "
                                  "(default 2)")
    orchestrate.add_argument("--executor", default="thread",
                             metavar="{thread,process,auto}",
                             help="task executor inside each campaign "
                                  "(default thread)")
    orchestrate.add_argument("--retries", type=int, default=2, metavar="N",
                             help="supervised-task retries per campaign "
                                  "(default 2)")
    orchestrate.add_argument("--max-active", type=int, default=2,
                             metavar="N",
                             help="campaigns leased concurrently "
                                  "(default 2)")
    orchestrate.add_argument("--lease-timeout", type=float, default=30.0,
                             metavar="SECONDS",
                             help="lease heartbeat deadline; a campaign "
                                  "that stops heartbeating this long is "
                                  "requeued and resumed from its journal "
                                  "(default 30)")
    orchestrate.add_argument("--restart-budget", type=int, default=3,
                             metavar="N",
                             help="lease recoveries per campaign before "
                                  "the circuit breaker marks it failed "
                                  "(default 3)")
    orchestrate.add_argument("--seed", type=int, default=7,
                             help="fault-plan seed for --inject-faults "
                                  "(default 7)")
    orchestrate.add_argument("--inject-faults", metavar="SPEC", default="",
                             help="deterministic fault injection (same "
                                  "grammar as the study commands; "
                                  "ledger.io and lease.expire target the "
                                  "orchestrator itself)")
    orchestrate.add_argument("--metrics-json", metavar="PATH", default="",
                             help="write the final queue document plus "
                                  "per-campaign metric roll-ups as JSON "
                                  "to PATH ('-' for stdout)")

    return parser


def _config(args) -> StudyConfig:
    config = (StudyConfig.quick(seed=args.seed) if args.quick
              else StudyConfig.paper_scale(seed=args.seed))
    if getattr(args, "scale", None):
        config.population = PopulationConfig(
            seed=args.seed, scale=args.scale,
            honeypot_scale=max(1, args.scale // 16),
        )
    if getattr(args, "attack_scale", None):
        config.attacks = AttackScheduleConfig(
            seed=args.seed, attack_scale=args.attack_scale,
            days=getattr(args, "days", 30),
        )
    elif getattr(args, "days", 30) != 30:
        config.attacks.days = args.days
    if getattr(args, "eu_blocklist", False):
        config.use_eu_blocklist = True
    if getattr(args, "shards", 1) != 1:
        config.scan.shards = args.shards
        config.scan.validate()  # ConfigError -> exit code 2
    if getattr(args, "attack_workers", 1) != 1:
        config.attacks.workers = args.attack_workers
        config.telescope.workers = args.attack_workers
        config.attacks.validate()  # ConfigError -> exit code 2
        config.telescope.validate()
    if getattr(args, "retries", 0):
        config.scan.retries = args.retries
        config.attacks.retries = args.retries
        config.telescope.retries = args.retries
        config.scan.validate()  # ConfigError -> exit code 2
        config.attacks.validate()
        config.telescope.validate()
    config.fail_policy = getattr(args, "fail_policy", "abort")
    if getattr(args, "cache_dir", ""):
        # Journals live beside the phase cache; written on every cached
        # run (crash safety is free), replayed only under --resume.
        config.journal_dir = os.path.join(args.cache_dir, "journal")
    if getattr(args, "resume", False):
        if not getattr(args, "cache_dir", ""):
            raise ConfigError(
                "--resume requires --cache-dir (the journal a resumed "
                "run replays lives under it)"
            )
        config.resume = True
    if getattr(args, "task_deadline", ""):
        config.task_deadline = args.task_deadline
    executor = getattr(args, "executor", "auto")
    if executor != "auto":
        # Like --backend below: no argparse `choices`, so an unknown
        # value surfaces as the typed ConfigError -> exit code 2 from
        # the final validate().  Sub-configs inherited the study default
        # at construction, so stamp them directly.
        config.executor = executor
        for sub in (config.scan, config.attacks, config.telescope):
            sub.executor = executor
    backend = getattr(args, "backend", "auto")
    if backend != "auto":
        # Not an argparse `choices` list on purpose: an unknown value (or
        # an explicit numpy without the dependency) surfaces as the typed
        # ConfigError -> exit code 2, like every other config mistake.
        resolve_backend(backend)
        config.backend = backend
        for sub in (config.scan, config.attacks, config.telescope):
            sub.backend = backend
    config.validate()  # ConfigError -> exit code 2
    return config


def _study(args) -> Study:
    """Build the study with the engine knobs the flags selected."""
    if args.no_cache:
        cache = False
    elif args.cache_dir:
        cache = PhaseCache(directory=args.cache_dir)
    else:
        cache = None  # the shared in-process cache
    return Study(
        _config(args),
        executor="thread" if args.threads else None,
        cache=cache,
    )


def _write_metrics(study: Study, args, out) -> None:
    if not args.metrics_json:
        return
    # Fold the disk cache's quarantine trail in beside the journals'.
    cache = study.engine.cache
    if cache is not None and getattr(cache, "quarantined", None):
        study.metrics.record_quarantines(cache.quarantined)
    text = study.metrics.to_json()
    if args.metrics_json == "-":
        out.write(text + "\n")
    else:
        try:
            with open(args.metrics_json, "w") as handle:
                handle.write(text + "\n")
        except OSError as error:
            raise ConfigError(
                f"cannot write metrics to {args.metrics_json!r}: {error}"
            ) from error


def _cmd_run(args, out) -> int:
    started = time.perf_counter()
    study = _study(args)
    results = study.run()
    out.write(f"study completed in {time.perf_counter() - started:.1f}s\n\n")
    for renderer in (render_table4, render_table5, render_table6,
                     render_table10, render_figure2, render_table7,
                     render_figure7, render_figure8, render_figure9,
                     render_table8, render_case_studies,
                     render_intersection):
        out.write(renderer(results))
        out.write("\n\n")
    _write_metrics(study, args, out)
    return EXIT_OK


def _cmd_scan(args, out) -> int:
    study = _study(args)
    study.run_classification()  # auto-resolves world, scans, fingerprints
    for renderer in (render_table4, render_table6, render_table5,
                     render_table10, render_figure2):
        out.write(renderer(study.results))
        out.write("\n\n")
    if args.export:
        with open(args.export, "w") as handle:
            handle.write(study.results.merged_db.to_jsonl())
        out.write(f"wrote {len(study.results.merged_db)} rows to "
                  f"{args.export}\n")
    _write_metrics(study, args, out)
    return EXIT_OK


def _cmd_attacks(args, out) -> int:
    study = _study(args)
    study.run_attacks()
    # Joins that only need the log.
    from repro.analysis.multistage import detect_multistage

    study.results.multistage = detect_multistage(
        study.results.schedule.log, study.results.schedule.rdns
    )
    for renderer in (render_table7, render_figure7, render_figure8,
                     render_figure9):
        out.write(renderer(study.results))
        out.write("\n\n")
    _write_metrics(study, args, out)
    return EXIT_OK


def _cmd_telescope(args, out) -> int:
    study = _study(args)
    capture = study.run_telescope()  # auto-resolves world + attacks
    out.write(render_table8(study.results))
    out.write("\n")
    out.write(f"rsdos attacks in capture: {len(capture.rsdos_truth)}\n")
    if args.export_day is not None:
        for line in capture.writer.lines_for_day(args.export_day):
            out.write(line + "\n")
    _write_metrics(study, args, out)
    return EXIT_OK


def _cmd_intersect(args, out) -> int:
    study = _study(args)
    results = study.run()
    out.write(render_intersection(results))
    out.write("\n")
    _write_metrics(study, args, out)
    return EXIT_OK


def _cmd_validate(args, out) -> int:
    from repro.core.validate import default_registry

    study = _study(args)
    registry = default_registry()
    violations = study.validate(registry)
    failed = {violation.invariant for violation in violations}
    for invariant in registry.invariants():
        status = "FAIL" if invariant.name in failed else "ok"
        out.write(f"{invariant.name:<32} {status}\n")
    for violation in violations:
        out.write(f"  {violation.invariant}: {violation.message}\n")
    _write_metrics(study, args, out)
    if violations:
        out.write(
            f"{len(violations)} invariant violation(s) across "
            f"{len(failed)} invariant(s)\n"
        )
        return EXIT_VALIDATION
    out.write(f"all {len(registry)} invariants hold\n")
    return EXIT_OK


def _cmd_serve(args, out) -> int:
    import signal
    import threading

    from repro.stream.server import ControlServer
    from repro.stream.service import StreamConfig

    def config_factory(request):
        # Per-request bodies override the CLI's seed/scale; the quick
        # profile keeps interactively started campaigns snappy.
        merged = {"seed": args.seed}
        merged.update(request)
        from repro.stream.server import default_config_factory

        return default_config_factory(merged)

    defaults = StreamConfig(
        events_per_second=args.events_per_second,
        batch_size=args.batch_size,
        queue_capacity=args.queue_capacity,
        publish_policy=args.publish_policy,
        stall_timeout=args.stall_timeout,
    )
    defaults.validate()  # ConfigError -> exit code 2
    server = ControlServer(
        args.host, args.port,
        config_factory=config_factory, stream_defaults=defaults,
        max_campaigns=args.max_campaigns,
    )
    stop = threading.Event()
    restore = []
    if threading.current_thread() is threading.main_thread():
        # SIGTERM (systemd/container stop) and SIGINT (Ctrl-C) both mean
        # "shut down cleanly": stop campaigns, drain tailing SSE clients,
        # close the listener, exit 0.
        def request_stop(signum, frame):
            stop.set()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                restore.append((signum, signal.signal(signum, request_stop)))
            except (ValueError, OSError):  # pragma: no cover
                pass
    out.write(
        f"repro control API on http://{server.host}:{server.port} "
        "(POST /sim/start to launch a campaign; SIGTERM/Ctrl-C to stop)\n"
    )
    if hasattr(out, "flush"):
        out.flush()
    server.start()
    try:
        while not stop.is_set():
            stop.wait(0.2)
        out.write("\nshutting down: draining campaigns and tail clients\n")
        if hasattr(out, "flush"):
            out.flush()
    except KeyboardInterrupt:
        out.write("\nshutting down: draining campaigns and tail clients\n")
    finally:
        server.shutdown()
        for signum, previous in restore:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
    return ExitCode.OK


def _cmd_chaos(args, out) -> int:
    from repro.core.chaos import ChaosConfig, run_chaos

    report = run_chaos(ChaosConfig(
        seed=args.seed,
        fault_seed=args.fault_seed,
        scale=args.scale,
        workers=args.workers,
        retries=args.retries,
        restart_budget=args.restart_budget,
        hang_timeout=args.hang_timeout,
        fault_spec=args.faults or None,
    ), progress=out.write)
    out.write(report.render())
    if args.metrics_json:
        text = report.metrics_json()
        if args.metrics_json == "-":
            out.write(text + "\n")
        else:
            try:
                with open(args.metrics_json, "w") as handle:
                    handle.write(text + "\n")
            except OSError as error:
                raise ConfigError(
                    f"cannot write metrics to {args.metrics_json!r}: "
                    f"{error}"
                ) from error
    report.raise_on_failure()  # ValidationError -> exit code 5
    out.write("chaos soak passed: artifacts byte-identical under faults\n")
    return EXIT_OK


def _cmd_orchestrate(args, out) -> int:
    import json

    from repro.orchestrator import CampaignSpec, Orchestrator

    try:
        seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    except ValueError as error:
        raise ConfigError(f"--seeds must be comma-separated integers: "
                          f"{args.seeds!r}") from error
    if not seeds:
        raise ConfigError("--seeds named no seeds")

    orchestrator = Orchestrator(
        args.state_dir,
        max_active=args.max_active,
        max_campaigns=max(8, len(seeds) * 2),
        lease_timeout=args.lease_timeout,
        restart_budget=args.restart_budget,
    )
    try:
        ids = [
            orchestrator.submit(CampaignSpec(
                seed=seed,
                scale=args.scale,
                honeypot_scale=args.honeypot_scale,
                shards=args.shards,
                workers=args.workers,
                retries=args.retries,
                executor=args.executor,
            ), reuse=True)
            for seed in seeds
        ]
        orchestrator.drain()
        queue = orchestrator.queue()
        failed = []
        out.write(f"{'id':<6} {'seed':>6} {'state':<10} {'restarts':>8} "
                  f"detail\n")
        for campaign_id in ids:
            doc = orchestrator.status(campaign_id)
            detail = doc.get("error") or doc.get("reason", "")
            out.write(f"{doc['id']:<6} {doc['spec']['seed']:>6} "
                      f"{doc['state']:<10} {doc['restarts']:>8} {detail}\n")
            if doc["state"] == "failed":
                failed.append(doc)
        out.write(f"ledger: {queue['ledger_records']} records, "
                  f"{queue['ledger_quarantined']} quarantined tails; "
                  f"dedup hits {queue['dedup_hits']}, lease recoveries "
                  f"{queue['recovered']}\n")
        if args.metrics_json:
            document = {
                "queue": queue,
                "campaigns": [orchestrator.status(cid) for cid in ids],
            }
            text = json.dumps(document, indent=2, sort_keys=True)
            if args.metrics_json == "-":
                out.write(text + "\n")
            else:
                try:
                    with open(args.metrics_json, "w") as handle:
                        handle.write(text + "\n")
                except OSError as error:
                    raise ConfigError(
                        f"cannot write metrics to "
                        f"{args.metrics_json!r}: {error}"
                    ) from error
        if failed:
            raise OrchestratorError(
                f"{len(failed)} campaign(s) failed: "
                + ", ".join(f"{doc['id']} ({doc.get('error')})"
                            for doc in failed)
            )
    finally:
        orchestrator.shutdown()
    return EXIT_OK


_COMMANDS = {
    "run": _cmd_run,
    "scan": _cmd_scan,
    "attacks": _cmd_attacks,
    "telescope": _cmd_telescope,
    "intersect": _cmd_intersect,
    "validate": _cmd_validate,
    "serve": _cmd_serve,
    "chaos": _cmd_chaos,
    "orchestrate": _cmd_orchestrate,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    installed = False
    try:
        spec = getattr(args, "inject_faults", "")
        if spec:
            faults.install(FaultPlan.parse(spec, seed=args.seed))
            installed = True
        return _COMMANDS[args.command](args, out)
    except ConfigError as error:
        print(f"repro: configuration error: {error}", file=sys.stderr)
        return EXIT_CONFIG
    except PhaseOrderError as error:
        print(f"repro: phase-order error: {error}", file=sys.stderr)
        return EXIT_PHASE_ORDER
    except (TaskFailure, FaultError) as error:
        print(f"repro: task failure: {error}", file=sys.stderr)
        return EXIT_TASK_FAILURE
    except ValidationError as error:
        print(f"repro: validation error: {error}", file=sys.stderr)
        return EXIT_VALIDATION
    except ServeError as error:
        print(f"repro: serve error: {error}", file=sys.stderr)
        return EXIT_SERVE
    except OrchestratorError as error:
        print(f"repro: orchestrator error: {error}", file=sys.stderr)
        return EXIT_ORCHESTRATOR
    finally:
        if installed:
            faults.uninstall()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
