"""Network telescope: FlowTuple codec and the /8 darknet generator."""

from repro.telescope.flowtuple import (
    FlowTupleRecord,
    FlowTupleWriter,
    decode_flowtuple,
    encode_flowtuple,
)
from repro.telescope.rsdos import (
    BackscatterGenerator,
    RsdosAttack,
    SpoofedDosAttack,
    detect_rsdos,
)
from repro.telescope.telescope import (
    PAPER_TELESCOPE,
    NetworkTelescope,
    TelescopeCapture,
    TelescopeConfig,
)

__all__ = [
    "BackscatterGenerator",
    "FlowTupleRecord",
    "RsdosAttack",
    "SpoofedDosAttack",
    "detect_rsdos",
    "FlowTupleWriter",
    "NetworkTelescope",
    "PAPER_TELESCOPE",
    "TelescopeCapture",
    "TelescopeConfig",
    "decode_flowtuple",
    "encode_flowtuple",
]
