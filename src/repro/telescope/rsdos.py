"""RSDoS attack metadata — the telescope's third data product.

The CAIDA telescope ships "Aggregated Daily RSDoS Attack Metadata"
alongside FlowTuple and raw pcaps (Section 3.4).  Randomly-Spoofed DoS
attacks reveal themselves in a darknet through **backscatter**: the victim
answers spoofed SYNs with SYN-ACKs/RSTs toward the spoofed (random)
sources, 1/256th of which land in a /8 telescope (Moore et al., the
network-telescope paper the study cites).

This module provides both directions:

* :class:`BackscatterGenerator` — given spoofed DoS attack specs, emit the
  victim's backscatter FlowTuples into a telescope capture;
* :func:`detect_rsdos` — the Moore-style detector: group backscatter-
  flagged flows (SYN-ACK/RST from one source toward many dark addresses)
  into :class:`RsdosAttack` records, the daily metadata rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.columns import ColumnStore
from repro.net.ipv4 import CidrBlock, int_to_ip
from repro.net.packet import TcpFlags, TransportProtocol
from repro.net.prng import RandomStream
from repro.telescope.flowtuple import FlowTupleRecord

__all__ = ["SpoofedDosAttack", "RsdosAttack", "BackscatterGenerator", "detect_rsdos"]

_BACKSCATTER_FLAGS = int(TcpFlags.SYN | TcpFlags.ACK)


@dataclass(frozen=True)
class SpoofedDosAttack:
    """Ground truth of one randomly-spoofed DoS attack."""

    victim: int
    victim_port: int
    day: int
    duration_seconds: int
    packets_per_second: int

    @property
    def total_packets(self) -> int:
        """Attack volume at the victim."""
        return self.duration_seconds * self.packets_per_second


@dataclass
class RsdosAttack:
    """One detected attack — a row of the daily RSDoS metadata."""

    victim: int
    victim_port: int
    day: int
    backscatter_packets: int
    distinct_dark_targets: int
    #: Telescope sees 1/256 of random spoofing; this rescales to the
    #: victim-side volume estimate the CAIDA metadata reports.
    estimated_attack_packets: int = 0

    @property
    def victim_text(self) -> str:
        """Dotted-quad victim address."""
        return int_to_ip(self.victim)


class BackscatterGenerator:
    """Emits victim backscatter for spoofed attacks into a capture."""

    def __init__(
        self,
        dark_prefix: str = "44.0.0.0/8",
        seed: int = 7,
        *,
        telescope_fraction: float = 1 / 256,
        packet_scale: int = 16_384,
    ) -> None:
        self.dark = CidrBlock.parse(dark_prefix)
        self.telescope_fraction = telescope_fraction
        self.packet_scale = packet_scale
        self._stream = RandomStream(seed, "telescope.backscatter")

    def emit(
        self,
        attack: SpoofedDosAttack,
        writer,
        stream: Optional[RandomStream] = None,
    ) -> int:
        """Write the attack's backscatter records; returns packets emitted.

        The victim answers spoofed sources uniformly at random; the dark /8
        receives ``telescope_fraction`` of them, spread over distinct dark
        addresses (which is the detection signature).

        ``stream`` overrides the generator's internal sequential stream;
        the sharded telescope passes a per-attack derived stream so the
        emission is a pure function of the attack key instead of the
        global emission order.
        """
        stream = stream if stream is not None else self._stream
        landed = int(
            attack.total_packets * self.telescope_fraction / self.packet_scale
        )
        if landed <= 0:
            landed = 1
        # Spread over up to a few hundred distinct dark destinations.
        n_targets = min(landed, max(8, landed // 4))
        per_target = max(1, landed // n_targets)
        emitted = 0
        for _ in range(n_targets):
            dark_destination = stream.randint(
                self.dark.first, self.dark.last
            )
            writer.add(FlowTupleRecord(
                time=attack.day * 86_400 + stream.randint(0, 86_399),
                src_ip=attack.victim,
                dst_ip=dark_destination,
                src_port=attack.victim_port,
                dst_port=stream.randint(1024, 65_535),
                protocol=TransportProtocol.TCP,
                ttl=stream.randint(48, 64),
                tcp_flags=_BACKSCATTER_FLAGS,
                ip_len=44,
                packet_count=per_target,
                is_spoofed=False,  # backscatter sources are real victims
                country="",
                asn=0,
            ))
            emitted += per_target
        return emitted


def detect_rsdos(
    records: Iterable[FlowTupleRecord],
    *,
    min_dark_targets: int = 8,
    telescope_fraction: float = 1 / 256,
    packet_scale: int = 16_384,
) -> List[RsdosAttack]:
    """Moore-style backscatter detection over a record stream.

    A source sending SYN-ACKs to at least ``min_dark_targets`` distinct
    dark addresses on one day is inferred to be a DoS *victim*; the attack
    volume is estimated by rescaling the observed backscatter.  Accepts
    any record iterable, including a
    :class:`~repro.core.columns.ColumnStore` (the telescope's flow store).
    """
    if isinstance(records, ColumnStore):
        records = records.iter_rows()
    buckets: Dict[Tuple[int, int, int], List[FlowTupleRecord]] = {}
    for record in records:
        if record.tcp_flags != _BACKSCATTER_FLAGS:
            continue
        key = (record.src_ip, record.src_port, record.day)
        buckets.setdefault(key, []).append(record)

    attacks: List[RsdosAttack] = []
    for (victim, port, day), flows in sorted(buckets.items()):
        targets = {flow.dst_ip for flow in flows}
        if len(targets) < min_dark_targets:
            continue
        packets = sum(flow.packet_count for flow in flows)
        attacks.append(RsdosAttack(
            victim=victim,
            victim_port=port,
            day=day,
            backscatter_packets=packets,
            distinct_dark_targets=len(targets),
            estimated_attack_packets=int(
                packets * packet_scale / telescope_fraction
            ),
        ))
    return attacks
