"""FlowTuple records — the CAIDA STARDUST schema.

"The FlowTuple data is captured hourly and consists of elementary
information about the suspicious traffic ... source and destination IP
address, ports, timestamp, protocol, TTL, TCP flags, IP packet length,
packet count, country code, and ASN ... additional metadata like is_spoofed
and is_masscan" (Section 3.4).  :class:`FlowTupleRecord` carries exactly
those fields; the codec serialises to the CSV-ish line format the analysis
tooling reads and writes, so the telescope pipeline round-trips through the
same representation the real study parsed.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, NamedTuple

from repro.net.errors import ProtocolError
from repro.net.ipv4 import int_to_ip, ip_to_int
from repro.net.packet import TransportProtocol

__all__ = ["FlowTupleRecord", "encode_flowtuple", "decode_flowtuple", "FlowTupleWriter"]

_FIELDS = [
    "time", "src_ip", "dst_ip", "src_port", "dst_port", "protocol", "ttl",
    "tcp_flags", "ip_len", "packet_cnt", "is_spoofed", "is_masscan",
    "country", "asn",
]


class FlowTupleRecord(NamedTuple):
    """One aggregated flow observed at the telescope.

    A ``NamedTuple`` rather than a dataclass: the telescope constructs
    hundreds of thousands of these per capture, and tuple construction is
    several times cheaper than dataclass ``__init__`` while keeping the
    same named-field API.  Records are immutable (nothing ever rewrote one).
    """

    time: int              # epoch-ish seconds of the aggregation interval
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: TransportProtocol
    ttl: int = 64
    tcp_flags: int = 0x02  # SYN: scan probes dominate darknet traffic
    ip_len: int = 44
    packet_count: int = 1
    is_spoofed: bool = False
    is_masscan: bool = False
    country: str = ""
    asn: int = 0

    @property
    def src_text(self) -> str:
        """Dotted-quad source."""
        return int_to_ip(self.src_ip)

    @property
    def day(self) -> int:
        """0-based day of the record within the capture month."""
        return self.time // 86_400


def encode_flowtuple(record: FlowTupleRecord) -> str:
    """One CSV line in field order."""
    return ",".join(
        str(value)
        for value in (
            record.time,
            record.src_text,
            int_to_ip(record.dst_ip),
            record.src_port,
            record.dst_port,
            int(record.protocol),
            record.ttl,
            record.tcp_flags,
            record.ip_len,
            record.packet_count,
            int(record.is_spoofed),
            int(record.is_masscan),
            record.country,
            record.asn,
        )
    )


def decode_flowtuple(line: str) -> FlowTupleRecord:
    """Parse one CSV line back into a record."""
    parts = line.strip().split(",")
    if len(parts) != len(_FIELDS):
        raise ProtocolError(f"flowtuple line has {len(parts)} fields")
    return FlowTupleRecord(
        time=int(parts[0]),
        src_ip=ip_to_int(parts[1]),
        dst_ip=ip_to_int(parts[2]),
        src_port=int(parts[3]),
        dst_port=int(parts[4]),
        protocol=TransportProtocol(int(parts[5])),
        ttl=int(parts[6]),
        tcp_flags=int(parts[7]),
        ip_len=int(parts[8]),
        packet_count=int(parts[9]),
        is_spoofed=bool(int(parts[10])),
        is_masscan=bool(int(parts[11])),
        country=parts[12],
        asn=int(parts[13]),
    )


class FlowTupleWriter:
    """Accumulates records and renders the per-day file layout (the real
    telescope stores 1,440 per-minute files a day; we aggregate to days)."""

    def __init__(self) -> None:
        self._by_day: dict = {}

    def add(self, record: FlowTupleRecord) -> None:
        """File one record under its capture day."""
        self._by_day.setdefault(record.day, []).append(record)

    def extend_day(self, day: int, records: List[FlowTupleRecord]) -> None:
        """File a batch of same-day records, preserving their order.

        The sharded telescope merges per-(protocol, day) task outputs with
        this — one bucket lookup per task instead of per record."""
        if records:
            self._by_day.setdefault(day, []).extend(records)

    def days(self) -> List[int]:
        """Days with data, ascending."""
        return sorted(self._by_day)

    def lines_for_day(self, day: int) -> Iterator[str]:
        """Encoded lines of one day's file."""
        return (encode_flowtuple(record) for record in self._by_day.get(day, []))

    def records(self) -> Iterator[FlowTupleRecord]:
        """All records across days."""
        for day in self.days():
            yield from self._by_day[day]
