"""FlowTuple records — the CAIDA STARDUST schema.

"The FlowTuple data is captured hourly and consists of elementary
information about the suspicious traffic ... source and destination IP
address, ports, timestamp, protocol, TTL, TCP flags, IP packet length,
packet count, country code, and ASN ... additional metadata like is_spoofed
and is_masscan" (Section 3.4).  :class:`FlowTupleRecord` carries exactly
those fields; the codec serialises to the CSV-ish line format the analysis
tooling reads and writes, so the telescope pipeline round-trips through the
same representation the real study parsed.

The telescope is the repository's record-volume hot spot (hundreds of
thousands of flows per capture), so the store is chunked:
:class:`FlowTupleWriter` files either plain record lists (the row-wise
paths) or :class:`FlowBlock` columnar batches (the vectorized emitter)
under each capture day, and materializes :class:`FlowTupleRecord` tuples
only when a consumer actually iterates.  The writer speaks the same
:class:`~repro.core.columns.ColumnStore` protocol as the scan and attack
plane stores.
"""

from __future__ import annotations

from itertools import repeat
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
)

from repro.core.columns import resolve_backend, np as _np
from repro.net.errors import ProtocolError
from repro.net.ipv4 import int_to_ip, ip_to_int
from repro.net.packet import TransportProtocol

__all__ = [
    "FlowTupleRecord",
    "FlowBlock",
    "encode_flowtuple",
    "decode_flowtuple",
    "FlowTupleWriter",
]

#: Collection types accepted as ``where`` membership filters.
_COLLECTIONS = (set, frozenset, list, tuple)

_FIELDS = [
    "time", "src_ip", "dst_ip", "src_port", "dst_port", "protocol", "ttl",
    "tcp_flags", "ip_len", "packet_cnt", "is_spoofed", "is_masscan",
    "country", "asn",
]


class FlowTupleRecord(NamedTuple):
    """One aggregated flow observed at the telescope.

    A ``NamedTuple`` rather than a dataclass: the telescope constructs
    hundreds of thousands of these per capture, and tuple construction is
    several times cheaper than dataclass ``__init__`` while keeping the
    same named-field API.  Records are immutable (nothing ever rewrote one).
    """

    time: int              # epoch-ish seconds of the aggregation interval
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: TransportProtocol
    ttl: int = 64
    tcp_flags: int = 0x02  # SYN: scan probes dominate darknet traffic
    ip_len: int = 44
    packet_count: int = 1
    is_spoofed: bool = False
    is_masscan: bool = False
    country: str = ""
    asn: int = 0

    @property
    def src_text(self) -> str:
        """Dotted-quad source."""
        return int_to_ip(self.src_ip)

    @property
    def day(self) -> int:
        """0-based day of the record within the capture month."""
        return self.time // 86_400


def encode_flowtuple(record: FlowTupleRecord) -> str:
    """One CSV line in field order."""
    return ",".join(
        str(value)
        for value in (
            record.time,
            record.src_text,
            int_to_ip(record.dst_ip),
            record.src_port,
            record.dst_port,
            int(record.protocol),
            record.ttl,
            record.tcp_flags,
            record.ip_len,
            record.packet_count,
            int(record.is_spoofed),
            int(record.is_masscan),
            record.country,
            record.asn,
        )
    )


def decode_flowtuple(line: str) -> FlowTupleRecord:
    """Parse one CSV line back into a record."""
    parts = line.strip().split(",")
    if len(parts) != len(_FIELDS):
        raise ProtocolError(f"flowtuple line has {len(parts)} fields")
    return FlowTupleRecord(
        time=int(parts[0]),
        src_ip=ip_to_int(parts[1]),
        dst_ip=ip_to_int(parts[2]),
        src_port=int(parts[3]),
        dst_port=int(parts[4]),
        protocol=TransportProtocol(int(parts[5])),
        ttl=int(parts[6]),
        tcp_flags=int(parts[7]),
        ip_len=int(parts[8]),
        packet_count=int(parts[9]),
        is_spoofed=bool(int(parts[10])),
        is_masscan=bool(int(parts[11])),
        country=parts[12],
        asn=int(parts[13]),
    )


class FlowBlock:
    """One emission task's same-day flows held as columns.

    The vectorized telescope emitter draws whole per-day arrays and files
    them here without ever constructing a :class:`FlowTupleRecord` per
    flow; tuples materialize lazily in :meth:`records`.  A field may be a
    per-flow array/list or a single scalar broadcast across the block
    (``dst_port``, ``protocol`` and friends are constant within one
    (protocol, day) task).  Array fields unbox through ``ndarray.tolist``
    into native Python scalars, so encoded CSV lines are byte-identical to
    the row-wise path's.

    ``__slots__``-only and therefore picklable by the default protocol —
    blocks pass through the task journal exactly like record lists.
    """

    __slots__ = (
        "length", "time", "src_ip", "dst_ip", "src_port", "dst_port",
        "protocol", "ttl", "tcp_flags", "ip_len", "packet_count",
        "is_spoofed", "is_masscan", "country", "asn",
    )

    def __init__(
        self,
        length: int,
        *,
        time: Any,
        src_ip: Any,
        dst_ip: Any,
        src_port: Any,
        dst_port: Any,
        protocol: Any,
        ttl: Any,
        tcp_flags: Any,
        ip_len: Any,
        packet_count: Any,
        is_spoofed: Any,
        is_masscan: Any,
        country: Any,
        asn: Any,
    ) -> None:
        self.length = length
        self.time = time
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self.protocol = protocol
        self.ttl = ttl
        self.tcp_flags = tcp_flags
        self.ip_len = ip_len
        self.packet_count = packet_count
        self.is_spoofed = is_spoofed
        self.is_masscan = is_masscan
        self.country = country
        self.asn = asn

    def __len__(self) -> int:
        return self.length

    def _sequence(self, value: Any) -> Iterable[Any]:
        """One column as an iterable of ``length`` native Python values."""
        if hasattr(value, "tolist"):
            return value.tolist()
        if isinstance(value, list):
            return value
        return repeat(value, self.length)

    def records(self) -> Iterator[FlowTupleRecord]:
        """Materialize the block's tuples, in emission order."""
        fields = (
            self.time, self.src_ip, self.dst_ip, self.src_port,
            self.dst_port, self.protocol, self.ttl, self.tcp_flags,
            self.ip_len, self.packet_count, self.is_spoofed,
            self.is_masscan, self.country, self.asn,
        )
        for row in zip(*(self._sequence(value) for value in fields)):
            yield FlowTupleRecord(*row)


#: Canonical flow order — the telescope plane's merge key.
_CANONICAL_KEY = ("time", "src_ip", "dst_ip", "src_port", "dst_port")


class FlowTupleWriter:
    """Accumulates records and renders the per-day file layout (the real
    telescope stores 1,440 per-minute files a day; we aggregate to days).

    Storage is chunked: each day holds a list of chunks, a chunk being
    either a plain record list (row-wise emitters) or a :class:`FlowBlock`
    (the vectorized emitter) — blocks are filed whole, never exploded into
    tuples at ingest.  The writer also implements the shared
    :class:`~repro.core.columns.ColumnStore` query surface so telescope
    consumers can treat it like the other two plane stores.
    """

    def __init__(self, *, backend: str = "python") -> None:
        self.backend = resolve_backend(backend)
        #: Columnar ingests (``extend_day`` of a block, ``append_batch``),
        #: surfaced per-plane by the study metrics.
        self.batch_appends = 0
        self._by_day: Dict[int, list] = {}
        #: Batch-emission observers (see :meth:`subscribe`).
        self._observers: List[Callable[[List[FlowTupleRecord]], None]] = []

    def subscribe(
        self, callback: Callable[[List[FlowTupleRecord]], None]
    ) -> Callable[[List[FlowTupleRecord]], None]:
        """Register a batch-emission observer.

        ``callback`` receives the record list of every chunk filed
        through :meth:`extend_day` or :meth:`append_batch` (blocks are
        materialized to records only when observers exist) — the
        streaming layer's live tap on the telescope plane.  ``add``
        never notifies.  Returns the callback for symmetric
        :meth:`unsubscribe`.
        """
        self._observers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable) -> None:
        """Remove a previously subscribed observer."""
        self._observers.remove(callback)

    def _notify(self, records: Any) -> None:
        if not self._observers:
            return
        if isinstance(records, FlowBlock):
            records = list(records.records())
        elif not isinstance(records, list):
            records = list(records)
        if not records:
            return
        for callback in self._observers:
            callback(records)

    def _tail(self, day: int) -> list:
        """The day's open row-list chunk (opening one if the last chunk is
        a block or the day is new)."""
        chunks = self._by_day.setdefault(day, [])
        if not chunks or not isinstance(chunks[-1], list):
            chunks.append([])
        return chunks[-1]

    def add(self, record: FlowTupleRecord) -> None:
        """File one record under its capture day."""
        self._tail(record.day).append(record)

    def extend_day(self, day: int, records: Any) -> None:
        """File a batch of same-day records, preserving their order.

        The sharded telescope merges per-(protocol, day) task outputs with
        this — one bucket lookup per task instead of per record.  Accepts
        either a record list or a :class:`FlowBlock` (filed whole)."""
        if isinstance(records, FlowBlock):
            if len(records):
                self._by_day.setdefault(day, []).append(records)
            self.batch_appends += 1
            self._notify(records)
            return
        if records:
            if not isinstance(records, list):
                records = list(records)
            self._tail(day).extend(records)
            self._notify(records)

    def days(self) -> List[int]:
        """Days with data, ascending."""
        return sorted(self._by_day)

    def _day_records(self, day: int) -> Iterator[FlowTupleRecord]:
        for chunk in self._by_day.get(day, ()):
            if isinstance(chunk, list):
                yield from chunk
            else:
                yield from chunk.records()

    def lines_for_day(self, day: int) -> Iterator[str]:
        """Encoded lines of one day's file."""
        return (encode_flowtuple(record) for record in self._day_records(day))

    def records(self) -> Iterator[FlowTupleRecord]:
        """All records across days."""
        for day in self.days():
            yield from self._day_records(day)

    # -- ColumnStore protocol ---------------------------------------------

    def __len__(self) -> int:
        return sum(
            len(chunk)
            for chunks in self._by_day.values()
            for chunk in chunks
        )

    def iter_rows(self) -> Iterator[FlowTupleRecord]:
        """Protocol alias of :meth:`records`."""
        return self.records()

    def append_batch(self, rows: Iterable[FlowTupleRecord]) -> int:
        """File many records (any mix of days) in one pass; returns the
        row count."""
        by_day: Dict[int, List[FlowTupleRecord]] = {}
        count = 0
        for record in rows:
            by_day.setdefault(record.day, []).append(record)
            count += 1
        for day in sorted(by_day):
            self._tail(day).extend(by_day[day])
        self.batch_appends += 1
        for day in sorted(by_day):
            self._notify(by_day[day])
        return count

    def where(self, **filters: Any) -> "FlowTupleWriter":
        """A new writer holding the records matching every filter.

        Filters name :class:`FlowTupleRecord` fields (or the derived
        ``day``); a set/list/tuple value means membership, anything else
        equality."""
        tests = []
        for name, wanted in filters.items():
            if wanted is None:
                continue
            if isinstance(wanted, _COLLECTIONS):
                wanted = set(wanted)
                tests.append(lambda record, n=name, w=wanted: getattr(record, n) in w)
            else:
                tests.append(lambda record, n=name, w=wanted: getattr(record, n) == w)
        selected = FlowTupleWriter(backend=self.backend)
        for record in self.records():
            if all(test(record) for test in tests):
                selected.add(record)
        return selected

    def count_by(
        self, column: str, *, unique: Optional[str] = None
    ) -> Dict[Any, int]:
        """Counts (or distinct-``unique`` counts) grouped by ``column``,
        keyed in first-occurrence order."""
        if unique is None:
            counts: Dict[Any, int] = {}
            for record in self.records():
                key = getattr(record, column)
                counts[key] = counts.get(key, 0) + 1
            return counts
        distinct: Dict[Any, set] = {}
        for record in self.records():
            distinct.setdefault(getattr(record, column), set()).add(
                getattr(record, unique)
            )
        return {key: len(values) for key, values in distinct.items()}

    def column(self, name: str) -> list:
        """One field across all records, in day-then-emission order."""
        return [getattr(record, name) for record in self.records()]

    def sorted_canonical(self) -> "FlowTupleWriter":
        """A new writer in canonical
        ``(time, src_ip, dst_ip, src_port, dst_port)`` order.

        The NumPy backend lexsorts key columns extracted once; the Python
        backend's ``sorted`` is the differential oracle (both stable, both
        byte-identical)."""
        records = list(self.records())
        if self.backend == "numpy" and records:
            keys = [
                _np.fromiter(
                    (getattr(record, name) for record in records),
                    dtype=_np.int64, count=len(records),
                )
                # lexsort wants the primary key LAST.
                for name in reversed(_CANONICAL_KEY)
            ]
            order = _np.lexsort(keys).tolist()
            records = [records[i] for i in order]
        else:
            records.sort(
                key=lambda record: tuple(
                    getattr(record, name) for name in _CANONICAL_KEY
                )
            )
        ordered = FlowTupleWriter(backend=self.backend)
        ordered.append_batch(records)
        return ordered
