"""The /8 network telescope — Table 8's data source.

The UCSD telescope watches a dark /8 (1/256th of IPv4); it sees the
Internet's unsolicited "background radiation": bot scans, backscatter, and
scanning services sweeping the whole space.  Our generator reproduces the
April 2021 capture for the six IoT protocols:

* the same actor population that attacks the honeypots (the registry's
  ``visits_telescope`` sources) emits here too — this shared population is
  what makes the §5.3 intersection analysis possible;
* per-protocol *bulk background* sources top the unique-IP counts up to the
  Table 8 shape (Telnet's 85.6 M unique sources dwarf everything else);
* packet volumes are fitted to Table 8's daily averages.

Scaling note (documented in EXPERIMENTS.md): source counts use two tiers —
Telnet at 1:8192 and the rest at 1:64 — because Table 8 spans four orders
of magnitude; packet counts use a single 1:16384 scale so the inter-protocol
volume ratios stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.attacks.actors import ActorRegistry, SourceInfo
from repro.core.scaling import scale_count
from repro.core.taxonomy import TrafficClass
from repro.net.asn import AsnRegistry
from repro.net.errors import ConfigError
from repro.net.compat import DATACLASS_KW_ONLY
from repro.net.geo import GeoRegistry
from repro.net.ipv4 import AddressAllocator, CidrBlock
from repro.net.packet import TransportProtocol
from repro.net.prng import RandomStream
from repro.protocols.base import DEFAULT_PORTS, ProtocolId, TransportKind, transport_of
from repro.telescope.flowtuple import FlowTupleRecord, FlowTupleWriter
from repro.telescope.rsdos import BackscatterGenerator, SpoofedDosAttack

__all__ = [
    "PAPER_TELESCOPE",
    "TelescopeConfig",
    "TelescopeCapture",
    "NetworkTelescope",
]

#: Table 8: (daily average packet count, unique IPs, scanning-service IPs).
PAPER_TELESCOPE: Dict[ProtocolId, Tuple[int, int, int]] = {
    ProtocolId.TELNET: (2_554_585_920, 85_615_200, 4_142),
    ProtocolId.UPNP: (131_794_560, 18_633, 2_279),
    ProtocolId.COAP: (68_353_920, 2_342, 627),
    ProtocolId.MQTT: (17_072_640, 5_572, 1_248),
    ProtocolId.AMQP: (13_907_520, 7_132, 2_256),
    ProtocolId.XMPP: (6_429_600, 4_255, 1_973),
}


@dataclass(**DATACLASS_KW_ONLY)
class TelescopeConfig:
    """Telescope generation knobs."""

    #: ``None`` inherits the master study seed.
    seed: Optional[int] = None
    days: int = 30
    dark_prefix: str = "44.0.0.0/8"
    #: Source-count scale for Telnet (its 85.6 M unique IPs need a much
    #: harsher scale than the small protocols).
    telnet_source_scale: int = 8192
    #: Source-count scale for the other five protocols.
    source_scale: int = 64
    #: Packet-count scale (uniform, so volume ratios are preserved exactly).
    packet_scale: int = 16_384
    #: Fraction of flows flagged as spoofed / emitted by Masscan.
    spoofed_fraction: float = 0.03
    masscan_fraction: float = 0.06
    #: Randomly-spoofed DoS attacks whose backscatter the telescope sees
    #: per day (the RSDoS metadata product).
    rsdos_attacks_per_day: int = 3

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`~repro.net.errors.ConfigError` on invalid knobs."""
        if min(self.telnet_source_scale, self.source_scale, self.packet_scale) < 1:
            raise ConfigError("telescope scales must be >= 1")


@dataclass
class TelescopeCapture:
    """The month of captured FlowTuples plus per-protocol source ledgers."""

    writer: FlowTupleWriter
    sources_by_protocol: Dict[ProtocolId, Set[int]]
    scanning_sources_by_protocol: Dict[ProtocolId, Set[int]]
    packets_by_protocol: Dict[ProtocolId, int]
    config: TelescopeConfig
    #: Ground truth of the spoofed DoS attacks whose backscatter landed
    #: here (for scoring the RSDoS detector; the detector never reads it).
    rsdos_truth: List[SpoofedDosAttack] = field(default_factory=list)

    def unique_sources(self, protocol: Optional[ProtocolId] = None) -> Set[int]:
        """Distinct sources, optionally per protocol."""
        if protocol is not None:
            return set(self.sources_by_protocol.get(protocol, set()))
        result: Set[int] = set()
        for sources in self.sources_by_protocol.values():
            result.update(sources)
        return result

    def daily_average(self, protocol: ProtocolId) -> float:
        """Average packets/day for one protocol (scaled units)."""
        return self.packets_by_protocol.get(protocol, 0) / max(1, self.config.days)

    def daily_average_rescaled(self, protocol: ProtocolId) -> float:
        """Average packets/day mapped back to paper units."""
        return self.daily_average(protocol) * self.config.packet_scale

    def suspicious_sources(self, protocol: ProtocolId) -> Set[int]:
        """Sources not attributable to scanning services (Table 8's last
        column)."""
        return self.sources_by_protocol.get(protocol, set()) - (
            self.scanning_sources_by_protocol.get(protocol, set())
        )


class NetworkTelescope:
    """Generates the month of darknet traffic from the actor population."""

    def __init__(
        self,
        registry: ActorRegistry,
        geo: GeoRegistry,
        asn: AsnRegistry,
        config: Optional[TelescopeConfig] = None,
    ) -> None:
        self.registry = registry
        self.geo = geo
        self.asn = asn
        self.config = config or TelescopeConfig()
        self._stream = RandomStream(self.config.seed, "telescope")
        self._dark = CidrBlock.parse(self.config.dark_prefix)
        self._allocator = AddressAllocator(
            [CidrBlock.parse("24.0.0.0/6"), CidrBlock.parse("150.0.0.0/6")],
            self._stream.child("background"),
        )

    # -- generation ------------------------------------------------------

    def capture_month(self) -> TelescopeCapture:
        """Produce the full scaled April capture."""
        writer = FlowTupleWriter()
        sources_by_protocol: Dict[ProtocolId, Set[int]] = {}
        scanning_by_protocol: Dict[ProtocolId, Set[int]] = {}
        packets_by_protocol: Dict[ProtocolId, int] = {}

        registry_scanners = [
            info for info in self.registry
            if info.visits_telescope
            and info.traffic_class == TrafficClass.SCANNING_SERVICE
        ]
        registry_malicious = [
            info for info in self.registry
            if info.visits_telescope
            and info.traffic_class != TrafficClass.SCANNING_SERVICE
        ]
        # Every registry source flagged as telescope-visiting MUST appear in
        # the capture (a bot scanning the Internet cannot miss a /8) —
        # partition them across protocols proportionally to source counts,
        # with Telnet absorbing the bulk (bots scan Telnet first).
        partition_stream = self._stream.child("partition")
        protocol_list = list(PAPER_TELESCOPE)
        protocol_weights = [
            PAPER_TELESCOPE[protocol][1] for protocol in protocol_list
        ]
        malicious_by_protocol: Dict[ProtocolId, List[SourceInfo]] = {
            protocol: [] for protocol in protocol_list
        }
        for info in registry_malicious:
            protocol = partition_stream.choices(
                protocol_list, protocol_weights, k=1
            )[0]
            malicious_by_protocol[protocol].append(info)

        for protocol, (daily_avg, unique_ips, scanning_ips) in PAPER_TELESCOPE.items():
            stream = self._stream.child(f"proto.{protocol}")
            source_scale = (
                self.config.telnet_source_scale
                if protocol == ProtocolId.TELNET
                else self.config.source_scale
            )
            n_sources = max(2, scale_count(unique_ips, source_scale))
            # Scanning-service counts are small enough to share one scale.
            n_scanning = min(
                n_sources - 1,
                max(1, scale_count(scanning_ips, self.config.source_scale)),
            )

            # Scanning-service sources come from the shared registry first.
            scanning_sources: List[int] = []
            pool = list(registry_scanners)
            stream.shuffle(pool)
            for info in pool[:n_scanning]:
                scanning_sources.append(info.address)
            while len(scanning_sources) < n_scanning:
                scanning_sources.append(self._allocator.allocate())

            # Suspicious sources: this protocol's registry attackers, all of
            # them, then bulk background (the unattributed radiation that
            # dominates the real telescope) up to the scaled unique count.
            suspicious: List[int] = [
                info.address for info in malicious_by_protocol[protocol]
            ]
            n_suspicious = max(len(suspicious), n_sources - n_scanning)
            while len(suspicious) < n_suspicious:
                background = self._allocator.allocate()
                suspicious.append(background)
                # Background radiation sources join the shared ledger as
                # unknowns, so intel lookups (Figure 6's telescope side)
                # see them with unknown-grade reputations.
                self.registry.register(SourceInfo(
                    address=background,
                    traffic_class=TrafficClass.UNKNOWN,
                    actor="darknet-background",
                    visits_telescope=True,
                ))

            all_sources = scanning_sources + suspicious
            sources_by_protocol[protocol] = set(all_sources)
            scanning_by_protocol[protocol] = set(scanning_sources)

            total_packets = scale_count(
                daily_avg * self.config.days, self.config.packet_scale
            )
            packets_by_protocol[protocol] = self._emit_records(
                writer, protocol, all_sources, set(scanning_sources),
                total_packets, stream,
            )

        rsdos_truth = self._emit_rsdos_backscatter(writer)

        return TelescopeCapture(
            writer=writer,
            sources_by_protocol=sources_by_protocol,
            scanning_sources_by_protocol=scanning_by_protocol,
            packets_by_protocol=packets_by_protocol,
            config=self.config,
            rsdos_truth=rsdos_truth,
        )

    def _emit_rsdos_backscatter(
        self, writer: FlowTupleWriter
    ) -> List[SpoofedDosAttack]:
        """Generate the month's spoofed-DoS victims and their backscatter."""
        stream = self._stream.child("rsdos")
        generator = BackscatterGenerator(
            self.config.dark_prefix, self.config.seed,
            packet_scale=self.config.packet_scale,
        )
        attacks: List[SpoofedDosAttack] = []
        for day in range(self.config.days):
            for _ in range(self.config.rsdos_attacks_per_day):
                attack = SpoofedDosAttack(
                    victim=self._allocator.allocate(),
                    victim_port=stream.choice([80, 443, 53, 22, 25565]),
                    day=day,
                    duration_seconds=stream.randint(120, 7_200),
                    packets_per_second=stream.randint(20_000, 400_000),
                )
                generator.emit(attack, writer)
                attacks.append(attack)
        return attacks

    # -- internals ---------------------------------------------------------

    def _emit_records(
        self,
        writer: FlowTupleWriter,
        protocol: ProtocolId,
        sources: List[int],
        scanning_sources: Set[int],
        total_packets: int,
        stream: RandomStream,
    ) -> int:
        """Spread a packet budget over sources and days; returns packets."""
        port = DEFAULT_PORTS[protocol][0]
        transport = (
            TransportProtocol.UDP
            if transport_of(protocol) == TransportKind.UDP
            else TransportProtocol.TCP
        )
        # Zipf-ish activity: a few heavy hitters, a long quiet tail.
        weights = [1.0 / (rank + 1) for rank in range(len(sources))]
        weight_sum = sum(weights) or 1.0
        emitted = 0
        for rank, source in enumerate(sources):
            share = max(1, int(total_packets * weights[rank] / weight_sum))
            recurring = source in scanning_sources or stream.bernoulli(0.3)
            active_days = (
                list(range(0, self.config.days, stream.randint(1, 3)))
                if recurring
                else sorted(
                    stream.sample(
                        range(self.config.days),
                        min(self.config.days, stream.randint(1, 4)),
                    )
                )
            )
            per_day = max(1, share // max(1, len(active_days)))
            for day in active_days:
                dst = stream.randint(self._dark.first, self._dark.last)
                record = FlowTupleRecord(
                    time=day * 86_400 + stream.randint(0, 86_399),
                    src_ip=source,
                    dst_ip=dst,
                    src_port=stream.randint(1024, 65_535),
                    dst_port=port,
                    protocol=transport,
                    ttl=stream.randint(32, 255),
                    tcp_flags=0x02 if transport == TransportProtocol.TCP else 0,
                    ip_len=44 if transport == TransportProtocol.TCP else 60,
                    packet_count=per_day,
                    is_spoofed=stream.bernoulli(self.config.spoofed_fraction),
                    is_masscan=stream.bernoulli(self.config.masscan_fraction),
                    country=self.geo.country_of(source),
                    asn=self.asn.asn_of(source),
                )
                writer.add(record)
                emitted += per_day
        return emitted
