"""The /8 network telescope — Table 8's data source.

The UCSD telescope watches a dark /8 (1/256th of IPv4); it sees the
Internet's unsolicited "background radiation": bot scans, backscatter, and
scanning services sweeping the whole space.  Our generator reproduces the
April 2021 capture for the six IoT protocols:

* the same actor population that attacks the honeypots (the registry's
  ``visits_telescope`` sources) emits here too — this shared population is
  what makes the §5.3 intersection analysis possible;
* per-protocol *bulk background* sources top the unique-IP counts up to the
  Table 8 shape (Telnet's 85.6 M unique sources dwarf everything else);
* packet volumes are fitted to Table 8's daily averages.

Scaling note (documented in EXPERIMENTS.md): source counts use two tiers —
Telnet at 1:8192 and the rest at 1:64 — because Table 8 spans four orders
of magnitude; packet counts use a single 1:16384 scale so the inter-protocol
volume ratios stay exact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.attacks.actors import ActorRegistry, SourceInfo
from repro.core.columns import BACKENDS, resolve_backend, np as _np
from repro.core.scaling import scale_count
from repro.core.tasks import (
    EXECUTORS,
    ExecutorStats,
    ProcessPlan,
    TaskDeadline,
    TaskJournal,
    TaskRef,
    TaskTiming,
    run_tasks,
)
from repro.core.taxonomy import TrafficClass
from repro.net.asn import AsnRegistry
from repro.net.errors import ConfigError
from repro.net.compat import DATACLASS_KW_ONLY
from repro.net.geo import GeoRegistry
from repro.net.ipv4 import AddressAllocator, CidrBlock
from repro.net.packet import TransportProtocol
from repro.net.prng import RandomStream
from repro.protocols.base import DEFAULT_PORTS, ProtocolId, TransportKind, transport_of
from repro.telescope.flowtuple import FlowBlock, FlowTupleRecord, FlowTupleWriter
from repro.telescope.rsdos import BackscatterGenerator, SpoofedDosAttack

__all__ = [
    "PAPER_TELESCOPE",
    "TelescopeConfig",
    "TelescopeCapture",
    "NetworkTelescope",
]

#: Table 8: (daily average packet count, unique IPs, scanning-service IPs).
PAPER_TELESCOPE: Dict[ProtocolId, Tuple[int, int, int]] = {
    ProtocolId.TELNET: (2_554_585_920, 85_615_200, 4_142),
    ProtocolId.UPNP: (131_794_560, 18_633, 2_279),
    ProtocolId.COAP: (68_353_920, 2_342, 627),
    ProtocolId.MQTT: (17_072_640, 5_572, 1_248),
    ProtocolId.AMQP: (13_907_520, 7_132, 2_256),
    ProtocolId.XMPP: (6_429_600, 4_255, 1_973),
}


@dataclass(**DATACLASS_KW_ONLY)
class TelescopeConfig:
    """Telescope generation knobs."""

    #: ``None`` inherits the master study seed.
    seed: Optional[int] = None
    days: int = 30
    dark_prefix: str = "44.0.0.0/8"
    #: Source-count scale for Telnet (its 85.6 M unique IPs need a much
    #: harsher scale than the small protocols).
    telnet_source_scale: int = 8192
    #: Source-count scale for the other five protocols.
    source_scale: int = 64
    #: Packet-count scale (uniform, so volume ratios are preserved exactly).
    packet_scale: int = 16_384
    #: Fraction of flows flagged as spoofed / emitted by Masscan.
    spoofed_fraction: float = 0.03
    masscan_fraction: float = 0.06
    #: Randomly-spoofed DoS attacks whose backscatter the telescope sees
    #: per day (the RSDoS metadata product).
    rsdos_attacks_per_day: int = 3
    #: Concurrent (protocol, day) emission workers.  Output is
    #: byte-identical for every value, so the field is excluded from
    #: equality/fingerprints (a deployment knob, not an experiment one).
    workers: int = field(default=1, compare=False)
    #: Supervised re-executions per (protocol, day) task on a transient
    #: fault.  Robustness-only (tasks are pure, so a retry is
    #: byte-identical) and excluded from equality like ``workers``.
    retries: int = field(default=0, compare=False)
    #: Column backend for record emission and the flow store (``None``
    #: inherits the study-level choice).  The NumPy backend batch-draws
    #: each (protocol, day) task's fields and files them columnar; output
    #: is byte-identical to ``"python"``, so the knob is excluded from
    #: equality/fingerprints like ``workers``.
    backend: Optional[str] = field(default=None, compare=False)
    #: Task executor for the per-(protocol, day) batch (``None`` inherits
    #: the study-level choice; see
    #: :func:`~repro.core.tasks.resolve_executor`).  All executors are
    #: byte-identical, so the knob is excluded from equality/fingerprints.
    executor: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`~repro.net.errors.ConfigError` on invalid knobs."""
        if min(self.telnet_source_scale, self.source_scale, self.packet_scale) < 1:
            raise ConfigError("telescope scales must be >= 1")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ConfigError(
                f"backend must be one of {', '.join(BACKENDS)}; "
                f"got {self.backend!r}"
            )
        if self.executor is not None and self.executor not in EXECUTORS:
            raise ConfigError(
                f"executor must be one of {', '.join(EXECUTORS)}; "
                f"got {self.executor!r}"
            )


@dataclass
class TelescopeCapture:
    """The month of captured FlowTuples plus per-protocol source ledgers."""

    writer: FlowTupleWriter
    sources_by_protocol: Dict[ProtocolId, Set[int]]
    scanning_sources_by_protocol: Dict[ProtocolId, Set[int]]
    packets_by_protocol: Dict[ProtocolId, int]
    config: TelescopeConfig
    #: Ground truth of the spoofed DoS attacks whose backscatter landed
    #: here (for scoring the RSDoS detector; the detector never reads it).
    rsdos_truth: List[SpoofedDosAttack] = field(default_factory=list)

    def unique_sources(self, protocol: Optional[ProtocolId] = None) -> Set[int]:
        """Distinct sources, optionally per protocol."""
        if protocol is not None:
            return set(self.sources_by_protocol.get(protocol, set()))
        result: Set[int] = set()
        for sources in self.sources_by_protocol.values():
            result.update(sources)
        return result

    def daily_average(self, protocol: ProtocolId) -> float:
        """Average packets/day for one protocol (scaled units)."""
        return self.packets_by_protocol.get(protocol, 0) / max(1, self.config.days)

    def daily_average_rescaled(self, protocol: ProtocolId) -> float:
        """Average packets/day mapped back to paper units."""
        return self.daily_average(protocol) * self.config.packet_scale

    def suspicious_sources(self, protocol: ProtocolId) -> Set[int]:
        """Sources not attributable to scanning services (Table 8's last
        column)."""
        return self.sources_by_protocol.get(protocol, set()) - (
            self.scanning_sources_by_protocol.get(protocol, set())
        )


def _telescope_worker_setup(context) -> "NetworkTelescope":
    """Build one process worker's emission state (once per worker).

    Emission tasks touch only config-derived state — streams are pure
    functions of the seed, the dark prefix parses from the config — so the
    worker gets a registry-less telescope shell rather than the full actor
    population.  The parent's *resolved* backend rides along so ``"auto"``
    cannot resolve differently across the pool.
    """
    config, backend = context
    shell = NetworkTelescope.__new__(NetworkTelescope)
    shell.registry = None
    shell.geo = None
    shell.asn = None
    shell.config = config
    shell.backend = backend
    shell._stream = RandomStream(config.seed, "telescope")
    shell._dark = CidrBlock.parse(config.dark_prefix)
    shell._allocator = None
    shell.task_timings = []
    shell.executor_stats = ExecutorStats()
    shell._scanners = None
    return shell


def _telescope_worker_run(shell: "NetworkTelescope", payload):
    """Run one (unit, day) emission task inside a process worker."""
    unit, day, entries = payload
    if unit == "rsdos":
        return shell._emit_rsdos_day(day, entries)
    return shell._emit_day(unit, day, entries)


class NetworkTelescope:
    """Generates the month of darknet traffic from the actor population."""

    def __init__(
        self,
        registry: ActorRegistry,
        geo: GeoRegistry,
        asn: AsnRegistry,
        config: Optional[TelescopeConfig] = None,
    ) -> None:
        self.registry = registry
        self.geo = geo
        self.asn = asn
        self.config = config or TelescopeConfig()
        #: The resolved column backend ("python" or "numpy").
        self.backend = resolve_backend(self.config.backend)
        self._stream = RandomStream(self.config.seed, "telescope")
        self._dark = CidrBlock.parse(self.config.dark_prefix)
        self._allocator = AddressAllocator(
            [CidrBlock.parse("24.0.0.0/6"), CidrBlock.parse("150.0.0.0/6")],
            self._stream.child("background"),
        )
        #: Per-(protocol, day) wall times of the last :meth:`capture_month`.
        self.task_timings: List[TaskTiming] = []
        #: Executor kind and per-chunk timings of the last capture.
        self.executor_stats = ExecutorStats()
        self._scanners: Optional[List[SourceInfo]] = None

    # -- generation ------------------------------------------------------

    def capture_month(
        self,
        journal: Optional[TaskJournal] = None,
        deadline: Optional[TaskDeadline] = None,
    ) -> TelescopeCapture:
        """Produce the full scaled April capture.

        Runs as plan / execute / merge: source population, activity plans
        and RSDoS attack specs are drawn serially; record emission shards
        into per-(protocol, day) tasks on ``config.workers`` threads, each
        drawing from ``stream.derive(protocol, day)``; the merge files task
        outputs in canonical (protocol order, day) order — byte-identical
        for every worker count.

        Tasks run supervised: failures surface as
        :class:`~repro.net.errors.TaskFailure` naming the (protocol, day)
        task, transient faults retry ``config.retries`` times, and an
        optional ``journal`` lets an interrupted capture resume with
        byte-identical output.  An optional ``deadline`` arms per-task
        wall-time supervision.
        """
        writer = FlowTupleWriter(backend=self.backend)
        sources_by_protocol: Dict[ProtocolId, Set[int]] = {}
        scanning_by_protocol: Dict[ProtocolId, Set[int]] = {}

        malicious_by_protocol = self._partition_registry()
        day_plans: Dict[Tuple[ProtocolId, int], List[_SourceDayPlan]] = {}
        for protocol in PAPER_TELESCOPE:
            stream = self._stream.child(f"proto.{protocol}")
            all_sources, scanning_set = self._build_protocol_sources(
                protocol, stream, malicious_by_protocol[protocol]
            )
            sources_by_protocol[protocol] = set(all_sources)
            scanning_by_protocol[protocol] = scanning_set
            self._plan_emission(protocol, all_sources, scanning_set, stream, day_plans)
        rsdos_by_day = self._plan_rsdos()

        tasks: List[Tuple[object, int]] = []
        thunks = []
        for protocol in PAPER_TELESCOPE:
            for day in range(self.config.days):
                plan = day_plans.get((protocol, day))
                if not plan:
                    continue
                tasks.append((protocol, day))
                thunks.append(
                    lambda p=protocol, d=day, entries=plan: self._emit_day(
                        p, d, entries
                    )
                )
        for day in sorted(rsdos_by_day):
            tasks.append(("rsdos", day))
            thunks.append(
                lambda d=day, attacks=rsdos_by_day[day]: self._emit_rsdos_day(
                    d, attacks
                )
            )
        refs = [
            TaskRef("telescope", str(unit), day) for unit, day in tasks
        ]
        # The emission tasks need only config-derived state (streams are
        # re-derived from the seed), so the process plan ships the config
        # once per worker and plain (unit, day, entries) payloads per task.
        process_plan = ProcessPlan(
            run=_telescope_worker_run,
            setup=_telescope_worker_setup,
            context=(self.config, self.backend),
            payloads=[
                (
                    unit,
                    day,
                    rsdos_by_day[day] if unit == "rsdos"
                    else day_plans[(unit, day)],
                )
                for unit, day in tasks
            ],
        )
        outcomes = run_tasks(
            thunks, self.config.workers,
            refs=refs, retries=self.config.retries, journal=journal,
            deadline=deadline,
            executor=self.config.executor,
            process_plan=process_plan,
            stats=self.executor_stats,
        )

        self.task_timings = [timing for _, _, timing in outcomes]
        packets_by_protocol: Dict[ProtocolId, int] = {
            protocol: 0 for protocol in PAPER_TELESCOPE
        }
        for (unit, day), (records, packets, _) in zip(tasks, outcomes):
            writer.extend_day(day, records)
            if unit != "rsdos":
                packets_by_protocol[unit] += packets

        rsdos_truth = [
            attack
            for day in sorted(rsdos_by_day)
            for attack in rsdos_by_day[day]
        ]
        return TelescopeCapture(
            writer=writer,
            sources_by_protocol=sources_by_protocol,
            scanning_sources_by_protocol=scanning_by_protocol,
            packets_by_protocol=packets_by_protocol,
            config=self.config,
            rsdos_truth=rsdos_truth,
        )

    def capture_month_reference(self) -> TelescopeCapture:
        """The original strictly-serial capture (the differential oracle).

        One sequential stream per protocol interleaves activity planning
        with record emission — kept verbatim as the fidelity baseline for
        the sharded path.  Use a fresh telescope per call; both capture
        methods consume the same named streams.
        """
        writer = FlowTupleWriter()
        sources_by_protocol: Dict[ProtocolId, Set[int]] = {}
        scanning_by_protocol: Dict[ProtocolId, Set[int]] = {}
        packets_by_protocol: Dict[ProtocolId, int] = {}

        malicious_by_protocol = self._partition_registry()
        for protocol, (daily_avg, unique_ips, scanning_ips) in PAPER_TELESCOPE.items():
            stream = self._stream.child(f"proto.{protocol}")
            all_sources, scanning_set = self._build_protocol_sources(
                protocol, stream, malicious_by_protocol[protocol]
            )
            sources_by_protocol[protocol] = set(all_sources)
            scanning_by_protocol[protocol] = scanning_set

            total_packets = scale_count(
                daily_avg * self.config.days, self.config.packet_scale
            )
            packets_by_protocol[protocol] = self._emit_records(
                writer, protocol, all_sources, scanning_set,
                total_packets, stream,
            )

        rsdos_truth = self._emit_rsdos_backscatter(writer)

        return TelescopeCapture(
            writer=writer,
            sources_by_protocol=sources_by_protocol,
            scanning_sources_by_protocol=scanning_by_protocol,
            packets_by_protocol=packets_by_protocol,
            config=self.config,
            rsdos_truth=rsdos_truth,
        )

    # -- population (shared by both capture paths) -----------------------

    def _partition_registry(self) -> Dict[ProtocolId, List[SourceInfo]]:
        """Assign telescope-visiting registry attackers to protocols.

        Every registry source flagged as telescope-visiting MUST appear in
        the capture (a bot scanning the Internet cannot miss a /8) —
        partition them across protocols proportionally to source counts,
        with Telnet absorbing the bulk (bots scan Telnet first).
        """
        registry_malicious = [
            info for info in self.registry
            if info.visits_telescope
            and info.traffic_class != TrafficClass.SCANNING_SERVICE
        ]
        partition_stream = self._stream.child("partition")
        protocol_list = list(PAPER_TELESCOPE)
        protocol_weights = [
            PAPER_TELESCOPE[protocol][1] for protocol in protocol_list
        ]
        malicious_by_protocol: Dict[ProtocolId, List[SourceInfo]] = {
            protocol: [] for protocol in protocol_list
        }
        for info in registry_malicious:
            protocol = partition_stream.choices(
                protocol_list, protocol_weights, k=1
            )[0]
            malicious_by_protocol[protocol].append(info)
        return malicious_by_protocol

    def _build_protocol_sources(
        self,
        protocol: ProtocolId,
        stream: RandomStream,
        malicious: List[SourceInfo],
    ) -> Tuple[List[int], Set[int]]:
        """One protocol's source population: (all sources, scanning set)."""
        _, unique_ips, scanning_ips = PAPER_TELESCOPE[protocol]
        # The scanning-service roster never changes during a capture (only
        # UNKNOWN background sources get registered below), so scan the
        # registry once instead of once per protocol; each protocol still
        # shuffles its own fresh copy, in the original registry order.
        if self._scanners is None:
            self._scanners = [
                info for info in self.registry
                if info.visits_telescope
                and info.traffic_class == TrafficClass.SCANNING_SERVICE
            ]
        registry_scanners = list(self._scanners)
        source_scale = (
            self.config.telnet_source_scale
            if protocol == ProtocolId.TELNET
            else self.config.source_scale
        )
        n_sources = max(2, scale_count(unique_ips, source_scale))
        # Scanning-service counts are small enough to share one scale.
        n_scanning = min(
            n_sources - 1,
            max(1, scale_count(scanning_ips, self.config.source_scale)),
        )

        # Scanning-service sources come from the shared registry first.
        scanning_sources: List[int] = []
        pool = registry_scanners
        stream.shuffle(pool)
        for info in pool[:n_scanning]:
            scanning_sources.append(info.address)
        while len(scanning_sources) < n_scanning:
            scanning_sources.append(self._allocator.allocate())

        # Suspicious sources: this protocol's registry attackers, all of
        # them, then bulk background (the unattributed radiation that
        # dominates the real telescope) up to the scaled unique count.
        suspicious: List[int] = [info.address for info in malicious]
        n_suspicious = max(len(suspicious), n_sources - n_scanning)
        while len(suspicious) < n_suspicious:
            background = self._allocator.allocate()
            suspicious.append(background)
            # Background radiation sources join the shared ledger as
            # unknowns, so intel lookups (Figure 6's telescope side)
            # see them with unknown-grade reputations.
            self.registry.register(SourceInfo(
                address=background,
                traffic_class=TrafficClass.UNKNOWN,
                actor="darknet-background",
                visits_telescope=True,
            ))

        return scanning_sources + suspicious, set(scanning_sources)

    # -- sharded emission -------------------------------------------------

    def _plan_emission(
        self,
        protocol: ProtocolId,
        sources: List[int],
        scanning_set: Set[int],
        stream: RandomStream,
        day_plans: Dict[Tuple[ProtocolId, int], List[tuple]],
    ) -> None:
        """Draw one protocol's per-source activity plan (no emission).

        Zipf-ish activity: a few heavy hitters, a long quiet tail.  The
        per-source decisions (share of the packet budget, recurring or
        bursty, which days) stay on the serial per-protocol stream; only
        the per-record field draws move to the per-(protocol, day) task
        streams.  Geo/ASN are looked up once per source here instead of
        once per record.
        """
        daily_avg = PAPER_TELESCOPE[protocol][0]
        total_packets = scale_count(
            daily_avg * self.config.days, self.config.packet_scale
        )
        weight_sum = sum(1.0 / (rank + 1) for rank in range(len(sources)))
        weight_sum = weight_sum or 1.0
        days = self.config.days
        rnd = stream.rng.random
        country_of = self.geo.country_of
        asn_of = self.asn.asn_of
        # One list per day, filed under (protocol, day) at the end: tens of
        # thousands of sources flow through here, so the activity draws are
        # raw uniforms (like the emission loop's) and the per-day buckets
        # are plain list indexing rather than keyed setdefaults.
        day_lists: List[List[tuple]] = [[] for _ in range(days)]
        for rank, source in enumerate(sources):
            share = max(1, int(total_packets / ((rank + 1) * weight_sum)))
            if source in scanning_set or rnd() < 0.3:
                active_days = range(0, days, 1 + int(rnd() * 3))
            else:
                wanted = min(days, 1 + int(rnd() * 4))
                chosen: Set[int] = set()
                while len(chosen) < wanted:
                    chosen.add(int(rnd() * days))
                active_days = sorted(chosen)
            per_day = max(1, share // max(1, len(active_days)))
            entry = (source, per_day, country_of(source), asn_of(source))
            for day in active_days:
                day_lists[day].append(entry)
        for day, entries in enumerate(day_lists):
            if entries:
                day_plans[(protocol, day)] = entries

    def _emit_day(
        self, protocol: ProtocolId, day: int, entries: List[tuple]
    ) -> Tuple[List[FlowTupleRecord], int, TaskTiming]:
        """Emit one (protocol, day) batch from its derived stream.

        The per-record fields are uniform draws computed directly from
        ``stream.random()`` — one raw draw each instead of the
        ``randint`` slow path — which is where the sharded telescope's
        single-thread throughput win comes from.  On the NumPy backend the
        task instead batch-draws all ``6 * n`` uniforms at once and builds
        a columnar :class:`FlowBlock` (see :meth:`_emit_day_numpy`).
        """
        if self.backend == "numpy" and entries:
            return self._emit_day_numpy(protocol, day, entries)
        start = time.perf_counter()
        stream = self._stream.derive("emit", str(protocol), day)
        rnd = stream.rng.random
        port = DEFAULT_PORTS[protocol][0]
        is_tcp = transport_of(protocol) != TransportKind.UDP
        transport = TransportProtocol.TCP if is_tcp else TransportProtocol.UDP
        tcp_flags = 0x02 if is_tcp else 0
        ip_len = 44 if is_tcp else 60
        dark_first = self._dark.first
        dark_span = self._dark.last - dark_first + 1
        day_base = day * 86_400
        spoofed_fraction = self.config.spoofed_fraction
        masscan_fraction = self.config.masscan_fraction
        records: List[FlowTupleRecord] = []
        append = records.append
        record = FlowTupleRecord
        packets = 0
        # Positional construction: this is the telescope's per-record hot
        # loop, and the kwargs dict costs more than the field draws.
        for source, per_day, country, asn in entries:
            append(record(
                day_base + int(rnd() * 86_400),           # time
                source,                                    # src_ip
                dark_first + int(rnd() * dark_span),       # dst_ip
                1024 + int(rnd() * 64_512),                # src_port
                port,                                      # dst_port
                transport,
                32 + int(rnd() * 224),                     # ttl
                tcp_flags,
                ip_len,
                per_day,                                   # packet_count
                rnd() < spoofed_fraction,                  # is_spoofed
                rnd() < masscan_fraction,                  # is_masscan
                country,
                asn,
            ))
            packets += per_day
        timing = TaskTiming(
            plane="telescope", unit=str(protocol), day=day,
            seconds=time.perf_counter() - start, events=len(records),
        )
        return records, packets, timing

    def _emit_day_numpy(
        self, protocol: ProtocolId, day: int, entries: List[tuple]
    ) -> Tuple[FlowBlock, int, TaskTiming]:
        """The vectorized twin of :meth:`_emit_day`.

        One :meth:`~repro.net.prng.RandomStream.uniform_array` call
        replaces the ``6 * n`` scalar draws (bit-identical floats, same
        order: row ``i`` consumes draws ``6i .. 6i+5`` exactly as the
        scalar loop does), and the field arithmetic runs as whole-column
        expressions whose truncations match ``int()`` on the scalar path
        (every operand is non-negative).  The output is a columnar
        :class:`FlowBlock`; its lazily-materialized records are
        byte-identical to the scalar path's list.
        """
        start = time.perf_counter()
        stream = self._stream.derive("emit", str(protocol), day)
        n = len(entries)
        draws = stream.uniform_array(6 * n).reshape(n, 6)
        port = DEFAULT_PORTS[protocol][0]
        is_tcp = transport_of(protocol) != TransportKind.UDP
        transport = TransportProtocol.TCP if is_tcp else TransportProtocol.UDP
        dark_first = self._dark.first
        dark_span = self._dark.last - dark_first + 1
        day_base = day * 86_400
        sources = _np.fromiter(
            (entry[0] for entry in entries), dtype=_np.int64, count=n
        )
        per_day = _np.fromiter(
            (entry[1] for entry in entries), dtype=_np.int64, count=n
        )
        block = FlowBlock(
            n,
            time=day_base + (draws[:, 0] * 86_400).astype(_np.int64),
            src_ip=sources,
            dst_ip=dark_first + (draws[:, 1] * dark_span).astype(_np.int64),
            src_port=1024 + (draws[:, 2] * 64_512).astype(_np.int64),
            dst_port=port,
            protocol=transport,
            ttl=32 + (draws[:, 3] * 224).astype(_np.int64),
            tcp_flags=0x02 if is_tcp else 0,
            ip_len=44 if is_tcp else 60,
            packet_count=per_day,
            is_spoofed=draws[:, 4] < self.config.spoofed_fraction,
            is_masscan=draws[:, 5] < self.config.masscan_fraction,
            country=[entry[2] for entry in entries],
            asn=[entry[3] for entry in entries],
        )
        packets = int(per_day.sum())
        timing = TaskTiming(
            plane="telescope", unit=str(protocol), day=day,
            seconds=time.perf_counter() - start, events=n,
        )
        return block, packets, timing

    def _plan_rsdos(self) -> Dict[int, List[SpoofedDosAttack]]:
        """Draw the month's spoofed-DoS attack specs, grouped by day."""
        stream = self._stream.child("rsdos")
        by_day: Dict[int, List[SpoofedDosAttack]] = {}
        for day in range(self.config.days):
            for _ in range(self.config.rsdos_attacks_per_day):
                attack = SpoofedDosAttack(
                    victim=self._allocator.allocate(),
                    victim_port=stream.choice([80, 443, 53, 22, 25565]),
                    day=day,
                    duration_seconds=stream.randint(120, 7_200),
                    packets_per_second=stream.randint(20_000, 400_000),
                )
                by_day.setdefault(day, []).append(attack)
        return by_day

    def _emit_rsdos_day(
        self, day: int, attacks: List[SpoofedDosAttack]
    ) -> Tuple[List[FlowTupleRecord], int, TaskTiming]:
        """Emit one day's backscatter from per-attack derived streams."""
        start = time.perf_counter()
        generator = BackscatterGenerator(
            self.config.dark_prefix, self.config.seed,
            packet_scale=self.config.packet_scale,
        )
        local = FlowTupleWriter()
        packets = 0
        for slot, attack in enumerate(attacks):
            packets += generator.emit(
                attack, local, stream=self._stream.derive("rsdos.emit", day, slot)
            )
        records = list(local.records())
        timing = TaskTiming(
            plane="telescope", unit="rsdos", day=day,
            seconds=time.perf_counter() - start, events=len(records),
        )
        return records, packets, timing

    # -- reference (strictly-serial oracle) -------------------------------

    def _emit_rsdos_backscatter(
        self, writer: FlowTupleWriter
    ) -> List[SpoofedDosAttack]:
        """Generate the month's spoofed-DoS victims and their backscatter."""
        stream = self._stream.child("rsdos")
        generator = BackscatterGenerator(
            self.config.dark_prefix, self.config.seed,
            packet_scale=self.config.packet_scale,
        )
        attacks: List[SpoofedDosAttack] = []
        for day in range(self.config.days):
            for _ in range(self.config.rsdos_attacks_per_day):
                attack = SpoofedDosAttack(
                    victim=self._allocator.allocate(),
                    victim_port=stream.choice([80, 443, 53, 22, 25565]),
                    day=day,
                    duration_seconds=stream.randint(120, 7_200),
                    packets_per_second=stream.randint(20_000, 400_000),
                )
                generator.emit(attack, writer)
                attacks.append(attack)
        return attacks

    # -- internals ---------------------------------------------------------

    def _emit_records(
        self,
        writer: FlowTupleWriter,
        protocol: ProtocolId,
        sources: List[int],
        scanning_sources: Set[int],
        total_packets: int,
        stream: RandomStream,
    ) -> int:
        """Spread a packet budget over sources and days; returns packets."""
        port = DEFAULT_PORTS[protocol][0]
        transport = (
            TransportProtocol.UDP
            if transport_of(protocol) == TransportKind.UDP
            else TransportProtocol.TCP
        )
        # Zipf-ish activity: a few heavy hitters, a long quiet tail.
        weights = [1.0 / (rank + 1) for rank in range(len(sources))]
        weight_sum = sum(weights) or 1.0
        emitted = 0
        for rank, source in enumerate(sources):
            share = max(1, int(total_packets * weights[rank] / weight_sum))
            recurring = source in scanning_sources or stream.bernoulli(0.3)
            active_days = (
                list(range(0, self.config.days, stream.randint(1, 3)))
                if recurring
                else sorted(
                    stream.sample(
                        range(self.config.days),
                        min(self.config.days, stream.randint(1, 4)),
                    )
                )
            )
            per_day = max(1, share // max(1, len(active_days)))
            for day in active_days:
                dst = stream.randint(self._dark.first, self._dark.last)
                record = FlowTupleRecord(
                    time=day * 86_400 + stream.randint(0, 86_399),
                    src_ip=source,
                    dst_ip=dst,
                    src_port=stream.randint(1024, 65_535),
                    dst_port=port,
                    protocol=transport,
                    ttl=stream.randint(32, 255),
                    tcp_flags=0x02 if transport == TransportProtocol.TCP else 0,
                    ip_len=44 if transport == TransportProtocol.TCP else 60,
                    packet_count=per_day,
                    is_spoofed=stream.bernoulli(self.config.spoofed_fraction),
                    is_masscan=stream.bernoulli(self.config.masscan_fraction),
                    country=self.geo.country_of(source),
                    asn=self.asn.asn_of(source),
                )
                writer.add(record)
                emitted += per_day
        return emitted
