"""Packet-level models shared by the scanner, attacker and telescope layers.

The simulation does not serialize full IP headers; it models the fields that
the paper's pipeline actually consumes — the FlowTuple schema of the CAIDA
telescope (src/dst, ports, protocol, TTL, TCP flags, lengths, packet counts)
plus the scanner-visible artifacts (``is_masscan``-style fingerprints,
spoofed sources).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.net.ipv4 import int_to_ip

__all__ = ["TransportProtocol", "TcpFlags", "Packet", "syn_probe", "udp_probe"]


class TransportProtocol(enum.IntEnum):
    """IANA transport protocol numbers used in the study."""

    ICMP = 1
    TCP = 6
    UDP = 17


class TcpFlags(enum.IntFlag):
    """TCP header flags (subset relevant to scan classification)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


@dataclass
class Packet:
    """A single simulated packet.

    ``payload`` carries the application-layer bytes when present; scan SYNs
    and telescope backscatter usually carry none.
    """

    src: int
    dst: int
    src_port: int
    dst_port: int
    protocol: TransportProtocol
    timestamp: float = 0.0
    ttl: int = 64
    flags: TcpFlags = TcpFlags(0)
    length: int = 40
    payload: bytes = b""
    is_spoofed: bool = False
    #: ZMap encodes the destination IP in the TCP sequence/ID fields;
    #: Masscan uses a distinctive ip-id. The telescope tags both.
    scanner_fingerprint: Optional[str] = None

    @property
    def src_text(self) -> str:
        """Dotted-quad source address."""
        return int_to_ip(self.src)

    @property
    def dst_text(self) -> str:
        """Dotted-quad destination address."""
        return int_to_ip(self.dst)

    @property
    def is_syn(self) -> bool:
        """True for a pure SYN (connection attempt / SYN scan probe)."""
        return self.flags == TcpFlags.SYN

    def __repr__(self) -> str:  # compact for logs
        proto = self.protocol.name
        return (
            f"Packet({self.src_text}:{self.src_port} -> "
            f"{self.dst_text}:{self.dst_port} {proto} len={self.length})"
        )


def syn_probe(
    src: int,
    dst: int,
    dst_port: int,
    *,
    timestamp: float = 0.0,
    src_port: int = 54321,
    ttl: int = 64,
    fingerprint: Optional[str] = "zmap",
) -> Packet:
    """Build a TCP SYN scan probe as emitted by ZMap-style scanners."""
    return Packet(
        src=src,
        dst=dst,
        src_port=src_port,
        dst_port=dst_port,
        protocol=TransportProtocol.TCP,
        timestamp=timestamp,
        ttl=ttl,
        flags=TcpFlags.SYN,
        length=44,
        scanner_fingerprint=fingerprint,
    )


def udp_probe(
    src: int,
    dst: int,
    dst_port: int,
    payload: bytes,
    *,
    timestamp: float = 0.0,
    src_port: int = 54321,
    ttl: int = 64,
    fingerprint: Optional[str] = "zmap",
) -> Packet:
    """Build a UDP application probe (e.g. CoAP GET /.well-known/core)."""
    return Packet(
        src=src,
        dst=dst,
        src_port=src_port,
        dst_port=dst_port,
        protocol=TransportProtocol.UDP,
        timestamp=timestamp,
        ttl=ttl,
        length=28 + len(payload),
        payload=payload,
        scanner_fingerprint=fingerprint,
    )
