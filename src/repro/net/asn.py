"""Synthetic Autonomous System registry.

The telescope FlowTuple schema carries an ASN per source address.  We model
AS assignment the same way as geolocation (:mod:`repro.net.geo`): the unicast
space is partitioned into /14 blocks and each block is owned by one AS drawn
from a heavy-tailed (Zipf-like) popularity distribution — a handful of large
eyeball/hosting networks own much of the space, with a long tail of small
networks, matching the qualitative shape of real BGP tables.
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.prng import RandomStream

__all__ = ["AsnRegistry"]

#: A few well-known network names give the synthetic data a realistic look in
#: reports; the remainder are generated "AS<number>" entries.
_SEED_NETWORKS = [
    "SYN-TELECOM-BACKBONE",
    "EYEBALL-CABLE-NET",
    "CLOUD-HOSTING-ALPHA",
    "UNIV-RESEARCH-NET",
    "MOBILE-CARRIER-EAST",
    "REGIONAL-ISP-SOUTH",
    "DATACENTER-BETA",
    "IOT-MVNO-NET",
]


class AsnRegistry:
    """Deterministic block-granular IPv4 → (ASN, AS name) mapping."""

    def __init__(self, seed: int, n_asns: int = 4096, block_prefix: int = 14) -> None:
        if n_asns < 1:
            raise ValueError("need at least one AS")
        self.block_prefix = block_prefix
        self._shift = 32 - block_prefix
        stream = RandomStream(seed, "asn.blocks")
        # Zipf-ish weights: weight of rank r is 1/r.
        asn_numbers = list(range(64496, 64496 + n_asns))
        weights = [1.0 / rank for rank in range(1, n_asns + 1)]
        n_blocks = 1 << block_prefix
        self._blocks: List[int] = stream.choices(asn_numbers, weights, k=n_blocks)
        self._names: Dict[int, str] = {}
        for index, asn in enumerate(asn_numbers):
            if index < len(_SEED_NETWORKS):
                self._names[asn] = _SEED_NETWORKS[index]
            else:
                self._names[asn] = f"AS{asn}-NET"

    def asn_of(self, address: int) -> int:
        """AS number owning the block containing ``address``."""
        return self._blocks[address >> self._shift]

    def name_of(self, asn: int) -> str:
        """Registered name of an AS (generated for tail ASes)."""
        return self._names.get(asn, f"AS{asn}-NET")

    def histogram(self, addresses) -> Dict[int, int]:
        """Count addresses per ASN."""
        counts: Dict[int, int] = {}
        for address in addresses:
            asn = self.asn_of(address)
            counts[asn] = counts.get(asn, 0) + 1
        return counts
