"""Exception hierarchy for the :mod:`repro` networking substrate.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressError(ReproError, ValueError):
    """An IPv4 address or CIDR block could not be parsed or is invalid."""


class AllocationError(ReproError):
    """The address allocator ran out of space in the requested pool."""


class ProtocolError(ReproError):
    """A protocol message could not be encoded or decoded."""


class ConnectionRefused(ReproError):
    """A simulated TCP connection attempt was refused (no listener)."""


class HostUnreachable(ReproError):
    """The destination address is not present in the simulated Internet."""


class ScanError(ReproError):
    """A scanning campaign was misconfigured or failed."""


class ConfigError(ReproError, ValueError):
    """A study or component configuration is invalid."""


class PhaseOrderError(ReproError, RuntimeError):
    """A pipeline phase was requested before its prerequisites ran.

    Replaces the old ``assert results.X is not None, "run_Y first"`` guards
    in the study driver: unlike ``assert``, this survives ``python -O``, and
    it carries the missing artifacts so callers (and the CLI) can report
    exactly which phase to run.
    """

    def __init__(self, message: str, *, missing=()) -> None:
        super().__init__(message)
        #: Artifact names that were required but not yet materialized.
        self.missing = tuple(missing)


class EngineError(ReproError):
    """The phase graph itself is malformed (cycle, duplicate provider)."""
