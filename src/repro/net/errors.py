"""Exception hierarchy for the :mod:`repro` networking substrate.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressError(ReproError, ValueError):
    """An IPv4 address or CIDR block could not be parsed or is invalid."""


class AllocationError(ReproError):
    """The address allocator ran out of space in the requested pool."""


class ProtocolError(ReproError):
    """A protocol message could not be encoded or decoded."""


class ConnectionRefused(ReproError):
    """A simulated TCP connection attempt was refused (no listener)."""


class HostUnreachable(ReproError):
    """The destination address is not present in the simulated Internet."""


class ScanError(ReproError):
    """A scanning campaign was misconfigured or failed."""


class ConfigError(ReproError, ValueError):
    """A study or component configuration is invalid."""
