"""Exception hierarchy for the :mod:`repro` networking substrate.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressError(ReproError, ValueError):
    """An IPv4 address or CIDR block could not be parsed or is invalid."""


class AllocationError(ReproError):
    """The address allocator ran out of space in the requested pool."""


class ProtocolError(ReproError):
    """A protocol message could not be encoded or decoded."""


class ConnectionRefused(ReproError):
    """A simulated TCP connection attempt was refused (no listener)."""


class HostUnreachable(ReproError):
    """The destination address is not present in the simulated Internet."""


class ScanError(ReproError):
    """A scanning campaign was misconfigured or failed."""


class ConfigError(ReproError, ValueError):
    """A study or component configuration is invalid."""


class PhaseOrderError(ReproError, RuntimeError):
    """A pipeline phase was requested before its prerequisites ran.

    Replaces the old ``assert results.X is not None, "run_Y first"`` guards
    in the study driver: unlike ``assert``, this survives ``python -O``, and
    it carries the missing artifacts so callers (and the CLI) can report
    exactly which phase to run.
    """

    def __init__(self, message: str, *, missing=()) -> None:
        super().__init__(message)
        #: Artifact names that were required but not yet materialized.
        self.missing = tuple(missing)


class EngineError(ReproError):
    """The phase graph itself is malformed (cycle, duplicate provider)."""


class FaultError(ReproError):
    """An injected fault fired at a named injection site.

    Raised only when a :class:`~repro.core.faults.FaultInjector` is
    installed; production runs without ``--inject-faults`` never see one.
    ``site`` names the injection site and ``key`` identifies the exact
    decision, so a failure report pinpoints the seeded draw that fired.
    """

    #: Whether a supervised retry may clear this fault.
    transient = False

    def __init__(self, message: str, *, site: str = "", key=()) -> None:
        super().__init__(message)
        self.site = site
        self.key = tuple(key)


class TransientFaultError(FaultError):
    """A retryable injected fault (packet loss, rate-limited peer, EINTR).

    The supervised task executor retries these up to ``retries`` times;
    the verdict is keyed on the attempt number, so a retry draws a fresh,
    independent fate — exactly like the fabric's keyed probe loss.
    """

    transient = True


class FatalFaultError(FaultError):
    """A non-retryable injected fault (corrupt input, dead vantage)."""


class EnvelopeError(ReproError):
    """A stored artifact envelope failed verification on read.

    Raised by :func:`repro.core.integrity.unwrap_envelope` when a
    journal/cache blob is damaged (checksum or structural corruption) or
    stale (schema, key or config-fingerprint mismatch).  ``reason`` is a
    stable machine-readable token (``"checksum-mismatch"``,
    ``"bad-magic"``, ``"stale-fingerprint"``, …) recorded verbatim in the
    :class:`~repro.core.integrity.QuarantineRecord` of the entry that is
    moved aside.
    """

    def __init__(self, message: str, *, reason: str = "malformed") -> None:
        super().__init__(message)
        #: Stable token naming what failed verification.
        self.reason = reason


class TaskDeadlineError(TransientFaultError):
    """A supervised task overran its hard deadline.

    Transient by design: a stalled task (lock convoy, cold page cache, a
    peer that finally timed out) usually completes normally when re-run,
    and every supervised task is a pure function of its derived PRNG key,
    so the retry is byte-identical to an undisturbed first attempt.  Flows
    through the ordinary ``--retries`` path; with retries exhausted it
    surfaces as a :class:`TaskFailure` naming the task (CLI exit code 4).
    """

    def __init__(
        self, message: str, *, site: str = "deadline", key=(),
        seconds: float = 0.0, limit: float = 0.0,
    ) -> None:
        super().__init__(message, site=site, key=key)
        #: Observed task wall time.
        self.seconds = seconds
        #: The hard deadline that was overrun.
        self.limit = limit


class ValidationError(ReproError):
    """A cross-plane structural invariant over finished artifacts failed.

    Raised (or collected, in the CLI's report mode) by
    :mod:`repro.core.validate`; the CLI maps it to exit code 5.
    """


class TaskFailure(ReproError):
    """A supervised task failed; names the task and preserves the cause.

    Replaces the bare exception the old ``run_tasks`` let escape: callers
    now learn *which* ``(plane, unit, day/shard)`` task died and after how
    many attempts, and outstanding sibling tasks are cancelled instead of
    running to completion behind the error.
    """

    def __init__(self, ref, cause: BaseException, *, attempts: int = 1) -> None:
        super().__init__(
            f"task {ref.key()} failed after {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}"
        )
        #: The failing task's :class:`~repro.core.tasks.TaskRef`.
        self.ref = ref
        #: The underlying exception (also chained as ``__cause__``).
        self.cause = cause
        #: Execution attempts made before giving up.
        self.attempts = attempts

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into ``__init__``, whose signature wants (ref, cause);
        # rebuild from the structured fields instead so a failure raised
        # inside a process-pool worker crosses the pipe intact.
        return (_rebuild_task_failure, (self.ref, self.cause, self.attempts))


def _rebuild_task_failure(ref, cause, attempts):
    return TaskFailure(ref, cause, attempts=attempts)


class ServeError(ReproError):
    """The streaming campaign service or its control surface failed.

    Raised by :mod:`repro.stream` for lifecycle misuse (feeding a
    finalized operator, starting a campaign twice) and by ``repro serve``
    for bind/startup failures; the CLI maps it to exit code 6.
    """


class ServiceBusyError(ServeError):
    """The control server is at its campaign limit; retry later.

    Raised by ``start_campaign`` when ``max_campaigns`` active campaigns
    already exist; the HTTP surface maps it to ``503`` with a
    ``Retry-After`` header of :attr:`retry_after` seconds.
    """

    def __init__(self, message: str, *, retry_after: float = 30.0) -> None:
        super().__init__(message)
        #: Suggested client back-off in seconds (the Retry-After header).
        self.retry_after = retry_after


class OrchestratorError(ReproError):
    """The durable campaign orchestrator failed.

    Raised by :mod:`repro.orchestrator` for lifecycle misuse (resuming a
    campaign that is not paused, submitting to a shut-down scheduler), a
    campaign circuit-broken to ``failed`` after exhausting its restart
    budget, and by ``repro orchestrate`` when a run ends with failed
    campaigns; the CLI maps it to exit code 7.
    """


class LedgerError(OrchestratorError):
    """The orchestrator's write-ahead ledger could not be written or read.

    Only raised for damage that durability cannot paper over — an append
    that cannot reach disk after retries, or a ledger whose *body* (not
    just its torn tail) fails envelope verification.  A torn or corrupt
    tail record is quarantined and truncated away instead, because that
    is exactly what a ``kill -9`` mid-append leaves behind.
    """


class OrchestratorBusyError(OrchestratorError):
    """The orchestrator's admission controller refused a submission.

    Raised by ``Orchestrator.submit`` when ``max_campaigns`` campaigns
    are already queued or running; the HTTP surface maps it to ``503``
    with a ``Retry-After`` header of :attr:`retry_after` seconds, like
    :class:`ServiceBusyError` on the streaming side.
    """

    def __init__(self, message: str, *, retry_after: float = 30.0) -> None:
        super().__init__(message)
        #: Suggested client back-off in seconds (the Retry-After header).
        self.retry_after = retry_after


class CursorLagError(ServeError):
    """A ring-buffer cursor points at evicted items.

    Raised by :meth:`repro.stream.bus.RingBuffer.tail` when a reader's
    cursor has fallen behind the bounded buffer's retention window —
    silently skipping the evicted items would let a tail client miss
    events without ever learning it did.  ``oldest`` is the oldest
    sequence number still retained (resume from there) and ``dropped``
    is how many items the reader missed.
    """

    def __init__(
        self, message: str, *, oldest: int = 0, dropped: int = 0,
    ) -> None:
        super().__init__(message)
        #: Oldest retained sequence number — the cursor to resume from.
        self.oldest = oldest
        #: Items evicted between the stale cursor and ``oldest``.
        self.dropped = dropped
