"""Reverse-DNS / domain registry for the simulated Internet.

Three analyses in the paper depend on reverse lookups:

* scanning services are recognised by their registered rDNS domains
  (``*.shodan.io``, ``*.stretchoid.com``, ...) — Section 4.3.1;
* infected non-IoT hosts are found by reverse-resolving attack sources to
  registered domains serving web pages (797 domains, 427 with a web page,
  346 flagged malicious) — Section 5.3;
* the CoAP DoS case study observed duplicate DNS entries across two source
  addresses (Section 5.1.3).

The registry is a simple bidirectional store; population builders and actor
models register entries, analyses query them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

__all__ = ["DomainRecord", "ReverseDns"]


@dataclass
class DomainRecord:
    """A registered domain and what a web probe of it would find."""

    domain: str
    has_webpage: bool = False
    page_kind: str = ""  # e.g. "wordpress-default", "apache-test", "fake-shop"
    serves_malware: bool = False
    addresses: Set[int] = field(default_factory=set)


class ReverseDns:
    """Bidirectional IP ↔ domain store with duplicate-entry support."""

    def __init__(self) -> None:
        self._by_address: Dict[int, str] = {}
        self._records: Dict[str, DomainRecord] = {}

    def register(
        self,
        address: int,
        domain: str,
        *,
        has_webpage: bool = False,
        page_kind: str = "",
        serves_malware: bool = False,
    ) -> DomainRecord:
        """Bind ``address`` to ``domain`` (one domain may span addresses)."""
        record = self._records.get(domain)
        if record is None:
            record = DomainRecord(
                domain=domain,
                has_webpage=has_webpage,
                page_kind=page_kind,
                serves_malware=serves_malware,
            )
            self._records[domain] = record
        record.addresses.add(address)
        record.has_webpage = record.has_webpage or has_webpage
        record.serves_malware = record.serves_malware or serves_malware
        if page_kind:
            record.page_kind = page_kind
        self._by_address[address] = domain
        return record

    def lookup(self, address: int) -> Optional[str]:
        """PTR-style lookup; None when unregistered (the common case)."""
        return self._by_address.get(address)

    def record(self, domain: str) -> Optional[DomainRecord]:
        """Full record for a registered domain."""
        return self._records.get(domain)

    def addresses_of(self, domain: str) -> Set[int]:
        """All addresses a domain resolves to (empty set if unknown)."""
        record = self._records.get(domain)
        return set(record.addresses) if record else set()

    def domains(self) -> List[str]:
        """All registered domain names."""
        return list(self._records)

    def duplicate_entry_addresses(self) -> List[Set[int]]:
        """Groups of addresses sharing one domain (size >= 2).

        The paper used such duplicates as a hint of reflection/amplification
        infrastructure (Section 5.1.3).
        """
        return [
            set(record.addresses)
            for record in self._records.values()
            if len(record.addresses) >= 2
        ]

    def __len__(self) -> int:
        return len(self._by_address)
