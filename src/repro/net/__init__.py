"""Networking substrate: addresses, packets, PRNG streams, geo/ASN/rDNS."""

from repro.net.asn import AsnRegistry
from repro.net.errors import (
    AddressError,
    AllocationError,
    ConfigError,
    ConnectionRefused,
    HostUnreachable,
    ProtocolError,
    ReproError,
    ScanError,
)
from repro.net.geo import COUNTRY_WEIGHTS, GeoRegistry
from repro.net.latency import LatencySampler, honeypot_latency, real_device_latency
from repro.net.ipv4 import (
    RESERVED_BLOCKS,
    AddressAllocator,
    CidrBlock,
    int_to_ip,
    ip_to_int,
    is_valid_ip,
)
from repro.net.packet import Packet, TcpFlags, TransportProtocol, syn_probe, udp_probe
from repro.net.prng import RandomStream, derive_seed
from repro.net.rdns import DomainRecord, ReverseDns

__all__ = [
    "AddressAllocator",
    "AddressError",
    "AllocationError",
    "AsnRegistry",
    "CidrBlock",
    "ConfigError",
    "ConnectionRefused",
    "COUNTRY_WEIGHTS",
    "DomainRecord",
    "GeoRegistry",
    "HostUnreachable",
    "LatencySampler",
    "honeypot_latency",
    "real_device_latency",
    "Packet",
    "ProtocolError",
    "RandomStream",
    "ReproError",
    "RESERVED_BLOCKS",
    "ReverseDns",
    "ScanError",
    "TcpFlags",
    "TransportProtocol",
    "derive_seed",
    "int_to_ip",
    "ip_to_int",
    "is_valid_ip",
    "syn_probe",
    "udp_probe",
]
