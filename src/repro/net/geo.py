"""Synthetic IP geolocation registry.

The paper geolocates misconfigured devices with the ipgeolocation.io
database (its Table 10 gives the country distribution).  We model geolocation
as a deterministic partition of the unicast IPv4 space into /12 blocks, each
assigned to a country with probability proportional to that country's share
of misconfigured devices in Table 10.  Looking up an address is then an O(1)
index into the partition.

This preserves the property the analysis pipeline relies on: hosts allocated
uniformly at random across the space land in countries with Table 10's
proportions, and *all* hosts within one block agree on their country (real
geolocation is likewise block-granular).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net.prng import RandomStream

__all__ = ["COUNTRY_WEIGHTS", "GeoRegistry"]

#: (country, weight) — weights are the Table 10 misconfigured-device counts.
#: "Other" aggregates the long tail exactly as the paper does.
COUNTRY_WEIGHTS: List[Tuple[str, float]] = [
    ("US", 494_881),
    ("CN", 238_276),
    ("RU", 166_793),
    ("TW", 163_127),
    ("DE", 142_966),
    ("PH", 113_639),
    ("GB", 106_308),
    ("BR", 60_485),
    ("IN", 58_653),
    ("TH", 49_488),
    ("HK", 45_822),
    ("KR", 45_822),
    ("IL", 38_491),
    ("CA", 34_825),
    ("OTHER", 23_828),
    ("BD", 20_162),
    ("FR", 16_496),
    ("JP", 12_830),
]

#: Human-readable names used in report rendering, keyed by ISO-ish code.
COUNTRY_NAMES: Dict[str, str] = {
    "US": "USA",
    "CN": "China",
    "RU": "Russia",
    "TW": "Taiwan",
    "DE": "Germany",
    "PH": "Philippines",
    "GB": "UK",
    "BR": "Brazil",
    "IN": "India",
    "TH": "Thailand",
    "HK": "Hong Kong",
    "KR": "South Korea",
    "IL": "Israel",
    "CA": "Canada",
    "OTHER": "Other countries",
    "BD": "Bangladesh",
    "FR": "France",
    "JP": "Japan",
}


class GeoRegistry:
    """Deterministic block-granular IPv4 → country mapping.

    Parameters
    ----------
    seed:
        Study seed; two registries with the same seed agree on every lookup.
    block_prefix:
        Granularity of country blocks (default /12 → 4096 blocks).
    """

    def __init__(self, seed: int, block_prefix: int = 12) -> None:
        if not 4 <= block_prefix <= 20:
            raise ValueError("block_prefix should be between /4 and /20")
        self.block_prefix = block_prefix
        self._shift = 32 - block_prefix
        n_blocks = 1 << block_prefix
        stream = RandomStream(seed, "geo.blocks")
        countries, weights = zip(*COUNTRY_WEIGHTS)
        self._blocks: List[str] = stream.choices(countries, weights, k=n_blocks)

    def country_of(self, address: int) -> str:
        """Country code for an address (always defined, O(1))."""
        return self._blocks[address >> self._shift]

    def country_name(self, code: str) -> str:
        """Human-readable country name for report rendering."""
        return COUNTRY_NAMES.get(code, code)

    def histogram(self, addresses) -> Dict[str, int]:
        """Count addresses per country code."""
        counts: Dict[str, int] = {}
        for address in addresses:
            code = self.country_of(address)
            counts[code] = counts.get(code, 0) + 1
        return counts
