"""Small version-compatibility shims shared by the config dataclasses.

The project supports Python 3.9 (the CI floor) while using 3.10+ dataclass
features where available.  ``DATACLASS_KW_ONLY`` expands to
``{"kw_only": True}`` on interpreters that support it, so config classes
are keyword-only everywhere the feature exists and degrade gracefully (but
stay constructible) on 3.9.
"""

from __future__ import annotations

import sys
from typing import Any, Dict

__all__ = ["DATACLASS_KW_ONLY"]

#: ``@dataclass(**DATACLASS_KW_ONLY)`` — keyword-only fields on 3.10+.
DATACLASS_KW_ONLY: Dict[str, Any] = (
    {"kw_only": True} if sys.version_info >= (3, 10) else {}
)
