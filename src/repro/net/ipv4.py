"""IPv4 address and CIDR-block machinery.

Addresses are represented as plain ``int`` (0 .. 2**32-1) throughout the hot
paths of the simulation; the helpers here convert between dotted-quad strings
and integers and implement CIDR containment, iteration and allocation.

We deliberately do not use :mod:`ipaddress` objects in the data plane: a
simulated Internet holds hundreds of thousands of hosts, and ints keyed in
dicts are several times faster and leaner than ``IPv4Address`` instances.
"""

from __future__ import annotations

from bisect import bisect
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterator, List, Sequence, Tuple

from repro.net.errors import AddressError, AllocationError

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "is_valid_ip",
    "CidrBlock",
    "AddressAllocator",
    "RESERVED_BLOCKS",
]


def ip_to_int(text: str) -> int:
    """Parse a dotted-quad IPv4 string into an integer.

    Raises :class:`AddressError` on malformed input, including octets with
    leading zeros (which are ambiguous — historically octal).
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet in {text!r}")
        if len(part) > 1 and part[0] == "0":
            raise AddressError(f"leading zero octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Render an integer as a dotted-quad IPv4 string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise AddressError(f"address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def is_valid_ip(text: str) -> bool:
    """True if ``text`` parses as a dotted-quad IPv4 address."""
    try:
        ip_to_int(text)
    except AddressError:
        return False
    return True


@dataclass(frozen=True)
class CidrBlock:
    """An IPv4 CIDR block, e.g. ``10.0.0.0/8``.

    Attributes
    ----------
    network:
        Network base address as an int (host bits already zeroed).
    prefix:
        Prefix length, 0..32.
    """

    network: int
    prefix: int

    @classmethod
    def parse(cls, text: str) -> "CidrBlock":
        """Parse ``"a.b.c.d/len"`` (a bare address means ``/32``)."""
        if "/" in text:
            addr_text, _, prefix_text = text.partition("/")
            if not prefix_text.isdigit():
                raise AddressError(f"bad prefix in {text!r}")
            prefix = int(prefix_text)
        else:
            addr_text, prefix = text, 32
        if not 0 <= prefix <= 32:
            raise AddressError(f"prefix out of range in {text!r}")
        base = ip_to_int(addr_text)
        return cls(network=base & cls._mask(prefix), prefix=prefix)

    @staticmethod
    def _mask(prefix: int) -> int:
        return 0 if prefix == 0 else (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF

    @property
    def netmask(self) -> int:
        """The netmask as an int."""
        return self._mask(self.prefix)

    @property
    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix)

    @property
    def first(self) -> int:
        """First (network) address."""
        return self.network

    @property
    def last(self) -> int:
        """Last (broadcast) address."""
        return self.network | (self.size - 1)

    def contains(self, address: int) -> bool:
        """True if ``address`` falls inside this block."""
        return (address & self.netmask) == self.network

    def overlaps(self, other: "CidrBlock") -> bool:
        """True if the two blocks share any address."""
        return self.first <= other.last and other.first <= self.last

    def addresses(self) -> Iterator[int]:
        """Iterate every address in the block (use with care on short prefixes)."""
        return iter(range(self.first, self.last + 1))

    def subnets(self, new_prefix: int) -> Iterator["CidrBlock"]:
        """Split into subnets of ``new_prefix`` length."""
        if new_prefix < self.prefix or new_prefix > 32:
            raise AddressError(
                f"cannot split /{self.prefix} into /{new_prefix}"
            )
        step = 1 << (32 - new_prefix)
        for base in range(self.first, self.last + 1, step):
            yield CidrBlock(base, new_prefix)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.prefix}"

    def __contains__(self, address: int) -> bool:
        return self.contains(address)


#: Blocks that are never routable on the public Internet; the population
#: builder and scanners both skip these, mirroring ZMap's default blocklist.
RESERVED_BLOCKS: List[CidrBlock] = [
    CidrBlock.parse("0.0.0.0/8"),        # "this" network
    CidrBlock.parse("10.0.0.0/8"),       # RFC 1918
    CidrBlock.parse("100.64.0.0/10"),    # CGN shared space
    CidrBlock.parse("127.0.0.0/8"),      # loopback
    CidrBlock.parse("169.254.0.0/16"),   # link local
    CidrBlock.parse("172.16.0.0/12"),    # RFC 1918
    CidrBlock.parse("192.0.2.0/24"),     # TEST-NET-1
    CidrBlock.parse("192.168.0.0/16"),   # RFC 1918
    CidrBlock.parse("198.18.0.0/15"),    # benchmarking
    CidrBlock.parse("198.51.100.0/24"),  # TEST-NET-2
    CidrBlock.parse("203.0.113.0/24"),   # TEST-NET-3
    CidrBlock.parse("224.0.0.0/4"),      # multicast
    CidrBlock.parse("240.0.0.0/4"),      # reserved
]


# The reserved blocks are ascending and disjoint, so containment is one
# bisection over the block starts — this runs once per allocation attempt.
_RESERVED_RANGES: List[Tuple[int, int]] = [
    (block.first, block.last) for block in RESERVED_BLOCKS
]
_RESERVED_FIRSTS: List[int] = [first for first, _ in _RESERVED_RANGES]


def _is_reserved(address: int) -> bool:
    index = bisect(_RESERVED_FIRSTS, address) - 1
    return index >= 0 and address <= _RESERVED_RANGES[index][1]


class AddressAllocator:
    """Hands out unique public IPv4 addresses inside a set of CIDR pools.

    Allocation is pseudo-random (so hosts are scattered across each pool like
    real allocations, not densely packed) but fully deterministic given the
    stream passed in.  Reserved blocks are never allocated even if a pool
    overlaps them.
    """

    def __init__(self, pools: Sequence[CidrBlock], stream) -> None:
        if not pools:
            raise AllocationError("allocator needs at least one pool")
        self._pools = list(pools)
        self._stream = stream
        self._allocated: set = set()
        self._weights = [pool.size for pool in self._pools]
        self._cum_weights = list(accumulate(self._weights))
        # Usable (low, high) per pool, skipping network/broadcast addresses
        # for realism on small pools.
        self._bounds = [
            (
                pool.first + (1 if pool.prefix < 31 else 0),
                pool.last - (1 if pool.prefix < 31 else 0),
            )
            for pool in self._pools
        ]

    @property
    def allocated_count(self) -> int:
        """Number of addresses handed out so far."""
        return len(self._allocated)

    def allocate(self) -> int:
        """Return a fresh unique address from a random pool.

        Raises :class:`AllocationError` when the pools are effectively full
        (after a bounded number of rejection-sampling attempts a linear scan
        is performed, so exhaustion is detected reliably).
        """
        rng = getattr(self._stream, "rng", self._stream)
        cum = self._cum_weights
        total = cum[-1]
        last = len(cum) - 1
        allocated = self._allocated
        for _ in range(64):
            # Draw-identical to ``pick_weighted`` over the pools: ``choices``
            # with k=1 consumes exactly one uniform and bisects cumulative
            # weights, which we precompute instead of rebuilding per call.
            low, high = self._bounds[bisect(cum, rng.random() * total, 0, last)]
            if low > high:
                continue
            candidate = rng.randint(low, high)
            if candidate in allocated or _is_reserved(candidate):
                continue
            allocated.add(candidate)
            return candidate
        # Rejection sampling failed; fall back to an ordered sweep (still
        # skipping network/broadcast addresses like the sampling path).
        for low, high in self._bounds:
            for candidate in range(low, high + 1):
                if candidate not in self._allocated and not _is_reserved(candidate):
                    self._allocated.add(candidate)
                    return candidate
        raise AllocationError("all allocator pools are exhausted")

    def allocate_many(self, count: int) -> List[int]:
        """Allocate ``count`` unique addresses."""
        return [self.allocate() for _ in range(count)]
