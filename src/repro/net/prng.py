"""Deterministic, splittable pseudo-random streams.

Every stochastic component of the simulation draws from a :class:`RandomStream`
derived from a single study seed.  Streams are *named*: a stream for
``"population.telnet"`` is independent of the stream for ``"attacks.mirai"``,
and both are fully determined by ``(seed, name)``.  This is what makes the
whole reproduction byte-for-byte repeatable: adding a new consumer of
randomness never perturbs the draws of existing consumers, because each
consumer owns its own stream.

The implementation hashes ``(seed, name)`` with SHA-256 and feeds the digest
into :class:`random.Random`, which is more than adequate statistically for a
simulation (we do not need cryptographic randomness, we need stability).

Two spawning styles coexist:

* :meth:`RandomStream.child` — the original dotted-name derivation, for
  singleton consumers wired up at construction time;
* :meth:`RandomStream.derive` — SplitMix-style *key-based* spawning for
  fan-out consumers (scan shards, per-probe decisions).  A derived stream
  is a pure function of ``(seed, name, key parts)``: it does not matter how
  many draws the parent or any sibling has made, nor in which order shards
  ask for their streams.  This is what lets K scan shards run concurrently
  and still reproduce the serial byte stream exactly.

:func:`keyed_uniform` is the stateless end of the same idea: one uniform
float fully determined by a key, with no stream object at all — the fabric
loss model uses it so that packet-loss verdicts are independent of the
order probes happen to traverse the fabric.
"""

from __future__ import annotations

import hashlib
import random
from bisect import bisect
from itertools import accumulate
from typing import Iterable, List, Optional, Sequence, TypeVar, Union

try:  # NumPy is optional; batch draws fall back to scalar loops without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less CI
    _np = None  # type: ignore[assignment]

T = TypeVar("T")
KeyPart = Union[int, str]

__all__ = [
    "DEFAULT_SEED",
    "RandomStream",
    "WeightedPicker",
    "derive_seed",
    "derive_key_seed",
    "keyed_uniform",
    "keyed_uniform_array",
    "resolve_seed",
    "splitmix64",
]

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Below this many draws the MT19937 state transplant (624 words copied
#: each way) costs more than the scalar loop; both paths yield identical
#: floats, so the threshold is a pure performance knob.
_BATCH_MIN = 64

#: Words in the Mersenne Twister state vector.
_MT_N = 624

#: The study-wide default seed.  Sub-configs use ``seed=None`` as an
#: "inherit from the master config" sentinel; a bare ``None`` reaching a
#: stream resolves here so standalone components stay usable.
DEFAULT_SEED = 7


def resolve_seed(seed: Optional[int]) -> int:
    """Collapse the ``None`` inherit-sentinel to the concrete default."""
    return DEFAULT_SEED if seed is None else seed


def derive_seed(seed: Optional[int], name: str) -> int:
    """Derive a 64-bit child seed from a parent ``seed`` and a stream ``name``.

    The derivation is stable across Python versions and platforms (it does not
    rely on ``hash()``, which is salted).
    """
    payload = f"{resolve_seed(seed)}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


def splitmix64(state: int) -> int:
    """One SplitMix64 output step (Steele et al., the JDK's splittable PRNG).

    Used as the mixing function for key-based stream derivation: it is
    cheap, stable across platforms, and avalanches every input bit.
    """
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _mix_part(state: int, part: KeyPart) -> int:
    """Fold one key part into the mixer state."""
    if isinstance(part, bool):  # bool is an int subclass; keep it distinct
        part = 0x42 + int(part)
    if isinstance(part, int):
        return splitmix64(state ^ (part & _MASK64) ^ ((part >> 64) & _MASK64))
    digest = hashlib.sha256(str(part).encode("utf-8")).digest()
    return splitmix64(state ^ int.from_bytes(digest[:8], "big"))


def derive_key_seed(seed: Optional[int], name: str, *key: KeyPart) -> int:
    """A 64-bit seed fully determined by ``(seed, name, key parts)``.

    Unlike sequential ``spawn`` designs, the derivation consumes no parent
    state: deriving keys in any order (or concurrently) yields the same
    seeds, which is the property the sharded scanner's determinism test
    pins down.
    """
    state = derive_seed(seed, name)
    for part in key:
        state = _mix_part(state, part)
    return splitmix64(state)


def keyed_uniform(seed: Optional[int], name: str, *key: KeyPart) -> float:
    """One uniform float in [0, 1) addressed purely by a key.

    The float is the 53-bit mantissa fraction of the derived seed, so two
    calls with equal keys always agree and calls with different keys are
    statistically independent — a random *function*, not a random stream.
    """
    return (derive_key_seed(seed, name, *key) >> 11) / float(1 << 53)


def _splitmix64_array(values):
    """Vectorized :func:`splitmix64` over a ``uint64`` ndarray (wrapping
    arithmetic stands in for the scalar path's ``& _MASK64``)."""
    values = values + _np.uint64(0x9E3779B97F4A7C15)
    z = (values ^ (values >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
    return z ^ (z >> _np.uint64(31))


def keyed_uniform_array(
    seed: Optional[int], name: str, n: int, *key: KeyPart, start: int = 0
):
    """``n`` keyed uniforms — element ``i`` equals
    ``keyed_uniform(seed, name, *key, start + i)`` exactly.

    The batch twin of :func:`keyed_uniform` for hot loops that consume a
    keyed draw per item of an indexed collection.  ``start`` offsets the
    trailing index key part, so a consumer that has already spent the
    first ``k`` draws of a flow (e.g. per-attempt loss verdicts) can
    batch the remainder without re-deriving the spent prefix.  With
    NumPy available the SplitMix64 mix runs vectorized over ``uint64``
    arrays and the result is a ``float64`` ndarray; otherwise a list
    from the scalar fallback.  Both spell out the same IEEE doubles.
    """
    if _np is None or n < _BATCH_MIN:
        return [
            keyed_uniform(seed, name, *key, i)
            for i in range(start, start + n)
        ]
    state = derive_seed(seed, name)
    for part in key:
        state = _mix_part(state, part)
    indexes = _np.arange(start, start + n, dtype=_np.uint64)
    with _np.errstate(over="ignore"):
        mixed = _splitmix64_array(_np.uint64(state) ^ indexes)
        final = _splitmix64_array(mixed)
    return (final >> _np.uint64(11)) / float(1 << 53)


class RandomStream:
    """A named, deterministic random stream.

    Parameters
    ----------
    seed:
        The study-level master seed.
    name:
        A dotted path identifying the consumer, e.g. ``"population.mqtt"``.
    """

    def __init__(self, seed: Optional[int], name: str) -> None:
        self.seed = resolve_seed(seed)
        self.name = name
        self._rng = random.Random(derive_seed(self.seed, name))

    def child(self, suffix: str) -> "RandomStream":
        """Return an independent sub-stream named ``<name>.<suffix>``."""
        return RandomStream(self.seed, f"{self.name}.{suffix}")

    def derive(self, *key: KeyPart) -> "RandomStream":
        """Key-derived sub-stream — SplitMix-style stable spawning.

        ``stream.derive("telnet", 3)`` is a pure function of the stream's
        ``(seed, name)`` identity and the key parts: independent of every
        draw made from this stream or its other children, and of the order
        sibling derivations happen.  Use it wherever consumers fan out
        dynamically (one stream per scan shard, per protocol, per host).
        """
        derived = RandomStream.__new__(RandomStream)
        derived.seed = self.seed
        derived.name = f"{self.name}[{','.join(str(part) for part in key)}]"
        derived._rng = random.Random(
            derive_key_seed(self.seed, self.name, *key)
        )
        return derived

    @property
    def rng(self) -> random.Random:
        """The underlying :class:`random.Random`.

        Hot loops bind its C-implemented methods directly
        (``rnd = stream.rng.random``) to skip the wrapper call below;
        the draws are identical either way.
        """
        return self._rng

    # -- thin, typed wrappers over random.Random -------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def uniform_array(self, n: int):
        """``n`` uniform floats in [0, 1) — bit-identical to ``n``
        sequential :meth:`random` calls, batched.

        **Determinism contract.**  Element ``i`` is exactly the float the
        ``i``-th scalar ``random()`` call would have produced, and after
        the call the stream continues precisely as if those ``n`` scalar
        draws had happened: CPython and NumPy both run MT19937 and both
        build doubles as ``(a >> 5) * 2^26 + (b >> 6)) / 2^53``, so the
        fast path transplants the Twister state into a
        ``numpy.random.RandomState``, draws the block vectorized, and
        transplants the advanced state back.  Without NumPy (or for small
        ``n``, where the 624-word transplant costs more than the loop) the
        scalar fallback produces the same values as a list.
        """
        if n <= 0:
            return _np.empty(0) if _np is not None else []
        if _np is None or n < _BATCH_MIN:
            rnd = self._rng.random
            out = [rnd() for _ in range(n)]
            return _np.asarray(out) if _np is not None else out
        version, internal, gauss_next = self._rng.getstate()
        twister = _np.random.RandomState()
        twister.set_state((
            "MT19937",
            _np.asarray(internal[:_MT_N], dtype=_np.uint32),
            internal[_MT_N],
        ))
        out = twister.random_sample(n)
        advanced = twister.get_state()
        self._rng.setstate((
            version,
            tuple(int(word) for word in advanced[1]) + (advanced[2],),
            gauss_next,
        ))
        return out

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (lambda)."""
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal variate."""
        return self._rng.gauss(mu, sigma)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(seq)

    def choices(self, seq: Sequence[T], weights: Sequence[float], k: int) -> List[T]:
        """``k`` weighted choices with replacement."""
        return self._rng.choices(seq, weights=weights, k=k)

    def weighted_picker(
        self, seq: Sequence[T], weights: Sequence[float]
    ) -> "WeightedPicker[T]":
        """A reusable one-draw picker over a fixed weight table.

        Each :meth:`WeightedPicker.pick` is bit-identical to
        ``choices(seq, weights, k=1)[0]`` — one ``random()`` draw bisected
        against the accumulated weights, exactly as :mod:`random` does it —
        but the cumulative table is built once here instead of on every
        call, which is what hot planning loops with static weights want.
        """
        return WeightedPicker(self, seq, weights)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """``k`` distinct elements sampled without replacement."""
        return self._rng.sample(seq, k)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return self._rng.random() < p

    def poisson(self, lam: float) -> int:
        """Poisson variate via inversion (exact for the small lambdas we use,
        normal approximation above 500 to stay O(1))."""
        if lam <= 0:
            return 0
        if lam > 500:
            value = int(round(self._rng.gauss(lam, lam ** 0.5)))
            return max(0, value)
        # Knuth inversion.
        import math

        threshold = math.exp(-lam)
        k = 0
        product = self._rng.random()
        while product > threshold:
            k += 1
            product *= self._rng.random()
        return k

    def bytes(self, n: int) -> bytes:
        """``n`` pseudo-random bytes (one ``getrandbits`` call, big-endian)."""
        if n <= 0:
            return b""
        return self._rng.getrandbits(n * 8).to_bytes(n, "big")

    def hex_token(self, n_bytes: int) -> str:
        """Hex string of ``n_bytes`` random bytes."""
        return self.bytes(n_bytes).hex()

    def pick_weighted(self, table: Iterable[tuple]) -> T:
        """Pick from an iterable of ``(item, weight)`` pairs."""
        items, weights = zip(*table)
        return self._rng.choices(items, weights=weights, k=1)[0]


class WeightedPicker:
    """Repeated weighted single picks with the cumulative table hoisted.

    CPython's ``random.choices`` rebuilds ``accumulate(weights)`` on every
    call and then bisects it against ``random() * total``; when the same
    weight table feeds thousands of ``k=1`` picks (session planning), the
    rebuild dominates.  This class builds the table once and replays the
    exact same draw-and-bisect, so the picks — and the stream state after
    them — are bit-identical to ``stream.choices(seq, weights, k=1)[0]``.
    """

    __slots__ = ("_seq", "_cum", "_total", "_hi", "_random")

    def __init__(
        self,
        stream: RandomStream,
        seq: Sequence[T],
        weights: Sequence[float],
    ) -> None:
        if len(seq) != len(weights):
            raise ValueError("seq and weights must have equal length")
        if not seq:
            raise ValueError("cannot pick from an empty sequence")
        self._seq = list(seq)
        self._cum = list(accumulate(weights))
        self._total = self._cum[-1] + 0.0
        if self._total <= 0.0:
            raise ValueError("total of weights must be greater than zero")
        self._hi = len(self._seq) - 1
        self._random = stream._rng.random

    def pick(self) -> T:
        """One weighted pick (consumes exactly one ``random()`` draw)."""
        return self._seq[
            bisect(self._cum, self._random() * self._total, 0, self._hi)
        ]
