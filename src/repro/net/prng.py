"""Deterministic, splittable pseudo-random streams.

Every stochastic component of the simulation draws from a :class:`RandomStream`
derived from a single study seed.  Streams are *named*: a stream for
``"population.telnet"`` is independent of the stream for ``"attacks.mirai"``,
and both are fully determined by ``(seed, name)``.  This is what makes the
whole reproduction byte-for-byte repeatable: adding a new consumer of
randomness never perturbs the draws of existing consumers, because each
consumer owns its own stream.

The implementation hashes ``(seed, name)`` with SHA-256 and feeds the digest
into :class:`random.Random`, which is more than adequate statistically for a
simulation (we do not need cryptographic randomness, we need stability).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["DEFAULT_SEED", "RandomStream", "derive_seed", "resolve_seed"]

#: The study-wide default seed.  Sub-configs use ``seed=None`` as an
#: "inherit from the master config" sentinel; a bare ``None`` reaching a
#: stream resolves here so standalone components stay usable.
DEFAULT_SEED = 7


def resolve_seed(seed: Optional[int]) -> int:
    """Collapse the ``None`` inherit-sentinel to the concrete default."""
    return DEFAULT_SEED if seed is None else seed


def derive_seed(seed: Optional[int], name: str) -> int:
    """Derive a 64-bit child seed from a parent ``seed`` and a stream ``name``.

    The derivation is stable across Python versions and platforms (it does not
    rely on ``hash()``, which is salted).
    """
    payload = f"{resolve_seed(seed)}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A named, deterministic random stream.

    Parameters
    ----------
    seed:
        The study-level master seed.
    name:
        A dotted path identifying the consumer, e.g. ``"population.mqtt"``.
    """

    def __init__(self, seed: Optional[int], name: str) -> None:
        self.seed = resolve_seed(seed)
        self.name = name
        self._rng = random.Random(derive_seed(self.seed, name))

    def child(self, suffix: str) -> "RandomStream":
        """Return an independent sub-stream named ``<name>.<suffix>``."""
        return RandomStream(self.seed, f"{self.name}.{suffix}")

    # -- thin, typed wrappers over random.Random -------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (lambda)."""
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal variate."""
        return self._rng.gauss(mu, sigma)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(seq)

    def choices(self, seq: Sequence[T], weights: Sequence[float], k: int) -> List[T]:
        """``k`` weighted choices with replacement."""
        return self._rng.choices(seq, weights=weights, k=k)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """``k`` distinct elements sampled without replacement."""
        return self._rng.sample(seq, k)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return self._rng.random() < p

    def poisson(self, lam: float) -> int:
        """Poisson variate via inversion (exact for the small lambdas we use,
        normal approximation above 500 to stay O(1))."""
        if lam <= 0:
            return 0
        if lam > 500:
            value = int(round(self._rng.gauss(lam, lam ** 0.5)))
            return max(0, value)
        # Knuth inversion.
        import math

        threshold = math.exp(-lam)
        k = 0
        product = self._rng.random()
        while product > threshold:
            k += 1
            product *= self._rng.random()
        return k

    def bytes(self, n: int) -> bytes:
        """``n`` pseudo-random bytes."""
        return bytes(self._rng.getrandbits(8) for _ in range(n))

    def hex_token(self, n_bytes: int) -> str:
        """Hex string of ``n_bytes`` random bytes."""
        return self.bytes(n_bytes).hex()

    def pick_weighted(self, table: Iterable[tuple]) -> T:
        """Pick from an iterable of ``(item, weight)`` pairs."""
        items, weights = zip(*table)
        return self._rng.choices(items, weights=weights, k=1)[0]
