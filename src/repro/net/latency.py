"""Response-latency models for hosts on the simulated Internet.

Honeypot fingerprinting does not stop at banners: "Some examples include
banner-based, static-response, the use of low-interaction libraries, and
response times" (§2.4), and U-Pot was explicitly evaluated by "trying to
measure the response times from the honeypot".

The physical intuition: a real embedded device answers from a slow SoC
behind a DSL line — tens of milliseconds with heavy load-dependent jitter —
while a low-interaction honeypot answers from an in-memory emulation on a
datacenter VM: fast and eerily *consistent*.  We model each host with a
:class:`LatencySampler` whose draws are deterministic per (seed, host), so
timing measurements are reproducible observables like banners.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.net.prng import RandomStream

__all__ = [
    "LatencySampler",
    "real_device_latency",
    "honeypot_latency",
]


@dataclass(frozen=True)
class LatencySampler:
    """One host's response-time distribution.

    ``base_ms`` is the median RTT; draws are lognormal around it with
    ``sigma`` controlling jitter, plus a uniform load term up to
    ``load_jitter_ms``.
    """

    base_ms: float
    sigma: float
    load_jitter_ms: float = 0.0

    def sample(self, stream: RandomStream) -> float:
        """One RTT measurement in milliseconds."""
        lognormal = self.base_ms * math.exp(self.sigma * stream.gauss(0, 1))
        load = stream.uniform(0, self.load_jitter_ms)
        return max(0.05, lognormal + load)

    def sample_many(self, stream: RandomStream, n: int) -> list:
        """``n`` RTT measurements."""
        return [self.sample(stream) for _ in range(n)]


def real_device_latency(stream: RandomStream) -> LatencySampler:
    """A per-device distribution for real embedded hardware.

    Medians span ~8-120 ms (consumer uplinks, slow SoCs), with substantial
    lognormal jitter and a load component.
    """
    base = stream.uniform(8.0, 120.0)
    sigma = stream.uniform(0.25, 0.6)
    load = stream.uniform(2.0, 25.0)
    return LatencySampler(base_ms=base, sigma=sigma, load_jitter_ms=load)


def honeypot_latency(stream: Optional[RandomStream] = None) -> LatencySampler:
    """The emulator signature: sub-millisecond, nearly jitter-free.

    Low-interaction honeypots answer from memory on datacenter machines;
    only network noise moves the needle.
    """
    base = 0.6 if stream is None else stream.uniform(0.4, 1.2)
    return LatencySampler(base_ms=base, sigma=0.05, load_jitter_ms=0.1)
