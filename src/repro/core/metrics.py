"""Structured execution metrics for the phase engine.

Every phase the engine runs (or serves from cache) is recorded as one
:class:`PhaseMetric`; a :class:`StudyMetrics` aggregates them into the
shapes the rest of the system consumes:

* ``group_seconds()`` — wall time rolled up to the eight paper phases
  (``world``/``scan``/…), feeding ``StudyResults.phase_seconds`` so the
  pre-engine API keeps working;
* ``to_dict()`` / ``to_json()`` — the ``--metrics-json`` CLI export;
* ``render()`` — a human table for interactive runs.

Rates are derived, not stored: a phase that reports an item count (hosts
scanned, attack events, telescope packets) gets an items/second figure for
free, which is what the benchmarks chart against the paper's own campaign
durations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.integrity import QuarantineRecord
from repro.core.tasks import (
    ChunkTiming,
    ExecutorStats,
    SupervisorEvent,
    TaskDeadline,
    TaskJournal,
    TaskStall,
    TaskTiming,
)
from repro.scanner.shard import ShardTiming

__all__ = [
    "PhaseMetric",
    "JournalMetric",
    "StoreMetric",
    "OperatorMetric",
    "ExecutorMetric",
    "SupervisorMetric",
    "BusMetric",
    "StudyMetrics",
]


@dataclass
class PhaseMetric:
    """One phase execution (or cache hit)."""

    phase: str
    #: Paper-level rollup bucket (``scan`` for zmap/sonar/shodan/merge …).
    group: str
    seconds: float
    cache_hit: bool = False
    #: Artifacts came off the on-disk layer rather than the in-process one.
    disk_hit: bool = False
    #: Domain items the phase produced (hosts, events, packets …).
    items: Optional[int] = None
    #: ``"ok"``, or ``"degraded"`` when an optional phase failed (or lost
    #: a degraded prerequisite) under ``fail_policy="degrade"`` and the
    #: study carried on with its artifacts as ``None``.
    status: str = "ok"

    @property
    def rate(self) -> Optional[float]:
        """Items per second, when the phase reported an item count."""
        if self.items is None or self.seconds <= 0:
            return None
        return self.items / self.seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "group": self.group,
            "seconds": round(self.seconds, 6),
            "cache_hit": self.cache_hit,
            "disk_hit": self.disk_hit,
            "items": self.items,
            "items_per_second": (
                round(self.rate, 3) if self.rate is not None else None
            ),
            "status": self.status,
        }


@dataclass
class JournalMetric:
    """One measurement plane's task-journal accounting for a run."""

    plane: str
    hits: int = 0
    stores: int = 0
    #: Best-effort journal writes that were skipped (I/O failure or an
    #: injected ``cache.io`` fault) — previously dropped on the floor.
    write_errors: int = 0
    #: Damaged/stale entries moved to ``quarantine/`` during this run.
    quarantined: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "plane": self.plane,
            "hits": self.hits,
            "stores": self.stores,
            "write_errors": self.write_errors,
            "quarantined": self.quarantined,
        }


@dataclass
class StoreMetric:
    """One plane store's column-backend accounting for a run.

    Distinguishes python from numpy runs in ``--metrics-json``: which
    backend the store resolved to, how many columnar batch ingests it
    served (``append_batch`` / block filings) and how many rows it holds.
    """

    plane: str
    backend: str
    batch_appends: int = 0
    rows: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "plane": self.plane,
            "backend": self.backend,
            "batch_appends": self.batch_appends,
            "rows": self.rows,
        }


@dataclass
class OperatorMetric:
    """One streaming operator's feed accounting for a campaign.

    Recorded by the campaign service when a stream finishes: how many
    rows/batches the operator folded and how long the folds took, which
    is the ``--metrics-json`` view of incremental-pipeline throughput.
    """

    operator: str
    plane: str
    batches: int = 0
    rows: int = 0
    seconds: float = 0.0

    @property
    def rate(self) -> Optional[float]:
        """Rows folded per second of operator time."""
        if self.seconds <= 0:
            return None
        return self.rows / self.seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "operator": self.operator,
            "plane": self.plane,
            "batches": self.batches,
            "rows": self.rows,
            "seconds": round(self.seconds, 6),
            "rows_per_second": (
                round(self.rate, 3) if self.rate is not None else None
            ),
        }


@dataclass
class ExecutorMetric:
    """One measurement plane's resolved task executor, with chunk walls.

    A frozen copy of the plane's :class:`~repro.core.tasks.ExecutorStats`
    taken when the phase finishes: which executor actually ran the batch
    (``serial``/``thread``/``process`` — ``auto`` resolves before this is
    recorded), how wide it was, and the per-worker chunk timings the
    striped scheduler produced.
    """

    plane: str
    kind: str
    workers: int
    tasks: int
    seconds: float
    chunks: List[ChunkTiming] = field(default_factory=list)

    @property
    def rate(self) -> Optional[float]:
        """Tasks completed per second of batch wall time."""
        if self.seconds <= 0:
            return None
        return self.tasks / self.seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "plane": self.plane,
            "kind": self.kind,
            "workers": self.workers,
            "tasks": self.tasks,
            "seconds": round(self.seconds, 6),
            "tasks_per_second": (
                round(self.rate, 3) if self.rate is not None else None
            ),
            "chunks": [chunk.to_dict() for chunk in self.chunks],
        }


@dataclass
class SupervisorMetric:
    """One pool-supervisor intervention, stamped with its plane.

    A :class:`~repro.core.tasks.SupervisorEvent` as recorded into the
    study-level metrics: which plane's batch the pool restart or executor
    downgrade happened in, why, at which pool generation, and how many
    in-flight tasks were requeued.
    """

    plane: str
    action: str
    reason: str
    generation: int
    requeued: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "plane": self.plane,
            "action": self.action,
            "reason": self.reason,
            "generation": self.generation,
            "requeued": self.requeued,
        }


@dataclass
class BusMetric:
    """One streaming campaign's event-bus overflow/error accounting.

    Recorded by the campaign service when a stream finishes: rows
    published, batches/rows shed by the bounded publish queue under a
    lossy policy, items evicted from the bounded event/alert rings, and
    operator exceptions the bus isolated.
    """

    published: int = 0
    dropped_batches: int = 0
    dropped_rows: int = 0
    events_evicted: int = 0
    alerts_evicted: int = 0
    operator_errors: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "published": self.published,
            "dropped_batches": self.dropped_batches,
            "dropped_rows": self.dropped_rows,
            "events_evicted": self.events_evicted,
            "alerts_evicted": self.alerts_evicted,
            "operator_errors": self.operator_errors,
        }


@dataclass
class StudyMetrics:
    """Everything one engine run measured, in execution order."""

    executor: str = "serial"
    #: The study-level resolved column backend ("python" or "numpy").
    backend: str = "python"
    phases: List[PhaseMetric] = field(default_factory=list)
    #: Per-(protocol, shard) scan timings from sharded campaigns.
    shards: List[ShardTiming] = field(default_factory=list)
    #: Per-(honeypot, day) / per-(protocol, day) generation timings from
    #: the sharded attack and telescope planes.
    tasks: List[TaskTiming] = field(default_factory=list)
    #: Per-plane journal accounting (hits, stores, skipped writes,
    #: quarantined entries), one row per supervised plane.
    journals: List[JournalMetric] = field(default_factory=list)
    #: Quarantine records from journals and the phase cache, in detection
    #: order — the full reasoned trail behind the counts above.
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    #: Soft-deadline overruns observed by task supervision.
    stalls: List[TaskStall] = field(default_factory=list)
    #: Per-plane store backend/batch accounting, one row per plane store.
    stores: List[StoreMetric] = field(default_factory=list)
    #: Streaming-operator feed accounting, one row per registered
    #: operator of a campaign-service run.
    operators: List[OperatorMetric] = field(default_factory=list)
    #: Per-plane resolved task executors (kind, width, chunk walls), one
    #: row per plane that ran a sharded task batch this run.
    task_executors: List[ExecutorMetric] = field(default_factory=list)
    #: Pool-supervisor interventions (restarts/downgrades), one row per
    #: event across every supervised plane batch of the run.
    supervisor: List[SupervisorMetric] = field(default_factory=list)
    #: Event-bus overflow/error accounting of a streamed campaign
    #: (``None`` for plain batch runs).
    bus: Optional[BusMetric] = None

    # -- recording --------------------------------------------------------

    def record(self, metric: PhaseMetric) -> None:
        self.phases.append(metric)

    def record_shards(self, timings: Iterable[ShardTiming]) -> None:
        """Attach the scanner's per-shard wall-time rows."""
        self.shards.extend(timings)

    def record_tasks(self, timings: Iterable[TaskTiming]) -> None:
        """Attach attack/telescope per-(unit, day) wall-time rows."""
        self.tasks.extend(timings)

    def record_supervision(
        self,
        plane: str,
        *,
        journal: Optional[TaskJournal] = None,
        deadline: Optional[TaskDeadline] = None,
    ) -> None:
        """Fold one plane's journal and deadline accounting into the run."""
        if journal is not None:
            self.journals.append(JournalMetric(
                plane=plane,
                hits=journal.hits,
                stores=journal.stores,
                write_errors=journal.write_errors,
                quarantined=len(journal.quarantined),
            ))
            self.quarantined.extend(journal.quarantined)
        if deadline is not None:
            self.stalls.extend(deadline.stalls)

    def record_quarantines(
        self, records: Iterable[QuarantineRecord]
    ) -> None:
        """Attach phase-cache quarantine records (no per-plane journal)."""
        self.quarantined.extend(records)

    def record_store(self, plane: str, store: object) -> None:
        """Fold one plane store's backend/batch accounting into the run.

        Works on anything shaped like a
        :class:`~repro.core.columns.ColumnStore` with the ``backend`` /
        ``batch_appends`` attributes the three plane stores carry.
        """
        self.stores.append(StoreMetric(
            plane=plane,
            backend=getattr(store, "backend", "python"),
            batch_appends=getattr(store, "batch_appends", 0),
            rows=len(store),  # type: ignore[arg-type]
        ))

    def record_executor(self, plane: str, stats: ExecutorStats) -> None:
        """Fold one plane's :class:`ExecutorStats` into the run.

        Skips planes that never ran a batch (``tasks == 0``) — a cached
        phase leaves its component's stats empty, and an all-"serial"
        row for it would misreport what this run executed.  Supervisor
        events ride along either way: a batch the supervisor had to
        restart or downgrade is worth a row even if every task was
        ultimately replayed from the journal.
        """
        for event in stats.supervisor:
            self.supervisor.append(SupervisorMetric(
                plane=plane,
                action=event.action,
                reason=event.reason,
                generation=event.generation,
                requeued=event.requeued,
            ))
        if stats.tasks == 0:
            return
        self.task_executors.append(ExecutorMetric(
            plane=plane,
            kind=stats.kind,
            workers=stats.workers,
            tasks=stats.tasks,
            seconds=stats.seconds,
            chunks=list(stats.chunks),
        ))

    def record_bus(self, bus: object) -> None:
        """Fold a streamed campaign's event-bus accounting into the run.

        Works on anything shaped like a
        :class:`~repro.stream.bus.EventBus` — published counts, queue
        drop counters, ring eviction counts and isolated operator-error
        counts.
        """
        events = getattr(bus, "events", None)
        alerts = getattr(bus, "alerts", None)
        operator_errors = getattr(bus, "operator_errors", {})
        self.bus = BusMetric(
            published=sum(getattr(bus, "published", {}).values()),
            dropped_batches=getattr(bus, "dropped_batches", 0),
            dropped_rows=getattr(bus, "dropped_rows", 0),
            events_evicted=getattr(events, "dropped", 0),
            alerts_evicted=getattr(alerts, "dropped", 0),
            operator_errors=sum(operator_errors.values()),
        )

    def record_operator(self, operator: object) -> None:
        """Fold one streaming operator's feed accounting into the run.

        Works on anything shaped like an
        :class:`~repro.stream.operators.OperatorBase` — the ``name`` /
        ``plane`` identity plus the ``rows_fed`` / ``batches_fed`` /
        ``seconds`` counters it maintains per feed.
        """
        self.operators.append(OperatorMetric(
            operator=getattr(operator, "name", type(operator).__name__),
            plane=getattr(operator, "plane", "analysis"),
            batches=getattr(operator, "batches_fed", 0),
            rows=getattr(operator, "rows_fed", 0),
            seconds=getattr(operator, "seconds", 0.0),
        ))

    # -- aggregate views --------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return sum(1 for metric in self.phases if metric.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(1 for metric in self.phases if not metric.cache_hit)

    @property
    def wall_seconds(self) -> float:
        """Sum of per-phase times (an upper bound under a parallel executor)."""
        return sum(metric.seconds for metric in self.phases)

    @property
    def degraded(self) -> List[str]:
        """Phases that failed but were degraded instead of aborting."""
        return [m.phase for m in self.phases if m.status == "degraded"]

    @property
    def journal_write_errors(self) -> int:
        """Total best-effort journal writes skipped across all planes."""
        return sum(journal.write_errors for journal in self.journals)

    def phase_order(self) -> List[str]:
        """Phase names in the order they completed."""
        return [metric.phase for metric in self.phases]

    def group_seconds(self) -> Dict[str, float]:
        """Wall time per paper-level phase group, insertion-ordered."""
        totals: Dict[str, float] = {}
        for metric in self.phases:
            totals[metric.group] = totals.get(metric.group, 0.0) + metric.seconds
        return totals

    # -- export -----------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Compact operator-facing roll-up of this run.

        The shape the orchestrator's ``GET /campaigns/<id>/status`` and
        ``GET /queue`` documents embed: scalar totals only — executor and
        backend identity, wall clock, cache traffic, journal replay
        totals, supervisor interventions, stalls, quarantine and bus
        counts — never the per-task row lists ``to_dict()`` carries,
        which would bloat a status poll with thousands of timing rows.
        """
        return {
            "executor": self.executor,
            "backend": self.backend,
            "wall_seconds": round(self.wall_seconds, 6),
            "cache_hits": self.cache_hits,
            "cache_disk_hits": sum(
                1 for metric in self.phases if metric.disk_hit
            ),
            "cache_misses": self.cache_misses,
            "degraded": len(self.degraded),
            "journal_hits": sum(j.hits for j in self.journals),
            "journal_stores": sum(j.stores for j in self.journals),
            "journal_write_errors": self.journal_write_errors,
            "quarantined": len(self.quarantined),
            "stalls": len(self.stalls),
            "pool_restarts": sum(
                1 for event in self.supervisor
                if event.action == "pool-restart"
            ),
            "downgrades": sum(
                1 for event in self.supervisor
                if event.action == "downgrade"
            ),
            "bus": self.bus.to_dict() if self.bus is not None else None,
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "executor": self.executor,
            "backend": self.backend,
            "wall_seconds": round(self.wall_seconds, 6),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "degraded": self.degraded,
            "group_seconds": {
                group: round(seconds, 6)
                for group, seconds in self.group_seconds().items()
            },
            "journal_write_errors": self.journal_write_errors,
            "phases": [metric.to_dict() for metric in self.phases],
            "shards": [timing.to_dict() for timing in self.shards],
            "tasks": [timing.to_dict() for timing in self.tasks],
            "journals": [journal.to_dict() for journal in self.journals],
            "quarantined": [
                record.to_dict() for record in self.quarantined
            ],
            "stalls": [stall.to_dict() for stall in self.stalls],
            "stores": [store.to_dict() for store in self.stores],
            "operators": [
                operator.to_dict() for operator in self.operators
            ],
            "task_executors": [
                executor.to_dict() for executor in self.task_executors
            ],
            "supervisor": [event.to_dict() for event in self.supervisor],
            "bus": self.bus.to_dict() if self.bus is not None else None,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """A fixed-width table for terminal output."""
        header = (f"{'phase':<18} {'group':<11} {'seconds':>9} "
                  f"{'cache':>6} {'items':>12} {'items/s':>12}")
        lines = [header, "-" * len(header)]
        for metric in self.phases:
            cache = ("DEGRADED" if metric.status == "degraded"
                     else "disk" if metric.disk_hit
                     else "hit" if metric.cache_hit else "miss")
            items = f"{metric.items:,}" if metric.items is not None else "-"
            rate = f"{metric.rate:,.0f}" if metric.rate is not None else "-"
            lines.append(
                f"{metric.phase:<18} {metric.group:<11} "
                f"{metric.seconds:>9.3f} {cache:>6} {items:>12} {rate:>12}"
            )
        lines.append(
            f"total {self.wall_seconds:.3f}s over {len(self.phases)} phases "
            f"({self.cache_hits} cached) via {self.executor} executor, "
            f"{self.backend} columns"
        )
        if self.stores:
            lines.append(
                "stores: "
                + "; ".join(
                    f"{store.plane} {store.backend} "
                    f"({store.rows:,} rows, {store.batch_appends} batches)"
                    for store in self.stores
                )
            )
        if self.task_executors:
            lines.append(
                "executors: "
                + "; ".join(
                    f"{metric.plane} {metric.kind}×{metric.workers} "
                    f"({metric.tasks} tasks"
                    + (f", {metric.rate:,.0f} tasks/s"
                       if metric.rate is not None else "")
                    + (f", {len(metric.chunks)} chunks)"
                       if metric.chunks else ")")
                    for metric in self.task_executors
                )
            )
        if self.supervisor:
            lines.append(
                "supervisor: "
                + "; ".join(
                    f"{event.plane} {event.action} ({event.reason}, "
                    f"gen {event.generation}, {event.requeued} requeued)"
                    for event in self.supervisor
                )
            )
        if self.bus is not None:
            lines.append(
                f"bus: {self.bus.published:,} rows published, "
                f"{self.bus.dropped_batches} batches/"
                f"{self.bus.dropped_rows} rows shed, "
                f"{self.bus.events_evicted} events / "
                f"{self.bus.alerts_evicted} alerts evicted, "
                f"{self.bus.operator_errors} operator errors isolated"
            )
        if self.operators:
            lines.append(
                "operators: "
                + "; ".join(
                    f"{metric.plane}.{metric.operator} "
                    f"({metric.rows:,} rows, {metric.batches} batches"
                    + (f", {metric.rate:,.0f} rows/s)"
                       if metric.rate is not None else ")")
                    for metric in self.operators
                )
            )
        if self.degraded:
            lines.append(
                "degraded phases (study continued without them): "
                + ", ".join(self.degraded)
            )
        if any(j.hits or j.stores or j.write_errors or j.quarantined
               for j in self.journals):
            lines.append(
                "journal: "
                + "; ".join(
                    f"{j.plane} {j.hits} replayed, {j.stores} stored, "
                    f"{j.write_errors} write errors, "
                    f"{j.quarantined} quarantined"
                    for j in self.journals
                )
            )
        if self.quarantined:
            lines.append(
                "quarantined entries: "
                + ", ".join(
                    f"{record.key} ({record.reason})"
                    for record in self.quarantined
                )
            )
        if self.stalls:
            lines.append(
                "stalled tasks (soft deadline overrun): "
                + ", ".join(
                    f"{stall.plane}.{stall.unit}.{stall.day} "
                    f"{stall.seconds:.3f}s > {stall.limit:g}s"
                    for stall in self.stalls
                )
            )
        if self.shards:
            lines.append("")
            lines.append(f"{'scan shard':<18} {'seconds':>9} {'records':>9} "
                         f"{'probes':>9} {'rec/s':>12}")
            for timing in self.shards:
                label = f"{timing.protocol}#{timing.shard}"
                lines.append(
                    f"{label:<18} {timing.seconds:>9.3f} "
                    f"{timing.records:>9,} {timing.probes:>9,} "
                    f"{timing.records_per_second:>12,.0f}"
                )
        if self.tasks:
            # One row per generation unit (honeypot / telescope protocol /
            # rsdos), summed over its days — the full per-day rows stay in
            # the JSON export.
            rollup: Dict[str, List[float]] = {}
            for timing in self.tasks:
                label = f"{timing.plane}:{timing.unit}"
                seconds, events, days = rollup.setdefault(label, [0.0, 0, 0])
                rollup[label] = [seconds + timing.seconds,
                                 events + timing.events, days + 1]
            lines.append("")
            lines.append(f"{'generation unit':<22} {'seconds':>9} "
                         f"{'events':>10} {'days':>5} {'ev/s':>12}")
            for label, (seconds, events, days) in rollup.items():
                rate = events / seconds if seconds > 0 else 0.0
                lines.append(
                    f"{label:<22} {seconds:>9.3f} {events:>10,} "
                    f"{days:>5} {rate:>12,.0f}"
                )
        return "\n".join(lines)
