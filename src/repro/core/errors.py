"""Process exit codes — the CLI's stable shell contract, as an enum.

Every ``repro`` subcommand maps its typed failures
(:mod:`repro.net.errors`) onto these codes; scripts and CI jobs branch on
them, so the numbers are frozen across releases.  They were previously
scattered as module constants in :mod:`repro.cli`; consolidating them
here gives the service layer (``repro serve``) and the tests one shared
spelling.

========  =====================================================
Code      Meaning
========  =====================================================
0         success
2         invalid configuration (``ConfigError``; argparse usage
          errors also exit 2)
3         phase-ordering violation (``PhaseOrderError``)
4         failed supervised task or unhandled injected fault
          (``TaskFailure``, ``FaultError``)
5         structural invariant violation (``repro validate``,
          ``ValidationError``)
6         control-service failure (``repro serve``, ``ServeError``)
7         orchestrator failure (``repro orchestrate``,
          ``OrchestratorError``: ledger damage, admission refusal,
          a campaign circuit-broken to ``failed``)
========  =====================================================
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["ExitCode"]


class ExitCode(IntEnum):
    """Stable CLI exit codes (see the table in the module docstring)."""

    OK = 0
    CONFIG = 2
    PHASE_ORDER = 3
    TASK_FAILURE = 4
    VALIDATION = 5
    SERVE = 6
    ORCHESTRATOR = 7

    def __str__(self) -> str:  # "2", not "ExitCode.CONFIG", in messages
        return str(self.value)
