"""The seeded chaos soak: a full campaign under randomized faults.

This is the supervision layer's end-to-end proof.  :func:`run_chaos`
runs the same 1:N campaign twice:

1. **baseline** — fault-free, thread executor, no cache; its three plane
   stores (merged scan DB, attack-event log, FlowTuple capture) are
   digested as the byte-identity oracle.
2. **soaked** — process executor with a seeded
   :class:`~repro.core.faults.FaultPlan` spanning every injection site:
   transient task faults, cache I/O faults, storage corruption (caught
   by the integrity envelopes), injected task delays overrunning the
   hard deadline, worker crashes (``os._exit`` inside pool workers —
   the pool supervisor rebuilds the pool and requeues the in-flight
   keys) and worker hangs (tripping the no-progress watchdog).
   Retries, journals and resume are all enabled, exactly as a
   production invocation would arm them.

Because every supervised task is a pure function of its derived PRNG
key, all of that violence must not move a single byte: the soaked run's
artifact digests are compared against the baseline, the validate
invariants are re-run over the soaked artifacts, and the soaked stores
are then replayed through the streaming service (bounded publish queue,
``block`` policy) so the online operators can be checked against their
batch oracles and the bus/ring overflow accounting lands in the
metrics.  Any divergence raises
:class:`~repro.net.errors.ValidationError` (CLI exit code 5).

A final **orchestrator leg** proves the durable scheduler's crash
story end-to-end: a child process runs ``repro orchestrate`` over two
campaigns, the parent SIGKILLs it as soon as task journals start
landing, then recovers in-process from the same state directory with
``ledger.io`` and ``lease.expire`` faults still armed.  The ledger
replay must requeue the leased campaigns, any torn ledger tail must
quarantine (never poison committed records), and the recovered
campaigns' artifact digests must byte-match fault-free oracle runs.

The fault plan is *randomized but seeded*: which tasks crash their
worker, which blobs are corrupted, which attempts fail is drawn from
``fault_seed`` via the same keyed-PRNG discipline as the rest of the
pipeline, so a failing soak reproduces exactly from its seed pair.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core import faults, tasks
from repro.core.config import StudyConfig
from repro.core.engine import PhaseCache
from repro.core.faults import FaultPlan
from repro.core.metrics import StudyMetrics
from repro.core.study import Study
from repro.internet.population import PopulationConfig
from repro.net.errors import ValidationError

__all__ = ["ChaosConfig", "ChaosReport", "run_chaos"]


@dataclass
class ChaosConfig:
    """Knobs for one chaos soak (defaults match the CI soak job)."""

    seed: int = 7
    #: Seed of the randomized fault plan (independent of the study seed,
    #: so the same world can be soaked under many failure schedules).
    fault_seed: int = 93
    scale: int = 4096
    honeypot_scale: int = 256
    workers: int = 4
    shards: int = 4
    retries: int = 3
    restart_budget: int = 3
    #: The pool supervisor's no-progress window (seconds); must sit well
    #: under ``hang_delay`` so an injected hang is detected, and above
    #: any honest task's runtime so clean pools are never restarted.
    hang_timeout: float = 5.0
    #: How long a ``worker.hang`` verdict makes the worker sleep.
    hang_delay: float = 20.0
    #: Soft:hard task deadline armed during the soak; the injected
    #: ``deadline`` delay overruns the hard limit, forcing a supervised
    #: retry.
    task_deadline: str = "1:2"
    #: Override the generated fault spec (``--inject-faults`` grammar).
    fault_spec: Optional[str] = None
    #: Working directory for the soaked run's cache + journals; a
    #: temporary directory (removed afterwards) when unset.
    workdir: Optional[str] = None
    #: Run the orchestrator crash-recovery leg (SIGKILL a child
    #: ``repro orchestrate``, recover from its ledger in-process).
    orchestrator_leg: bool = True
    #: Lease heartbeat deadline for the orchestrator leg; short, so a
    #: suppressed heartbeat (``lease.expire``) requeues quickly.
    lease_timeout: float = 5.0

    def spec(self) -> str:
        """The fault spec: every site armed, worker faults plane-scoped.

        ``worker.crash`` aims at the attacks plane and ``worker.hang``
        at the telescope plane so the two recovery paths are observed
        independently — a crash breaking a pool mid-generation would
        otherwise reshuffle which hang verdicts ever execute.
        ``ledger.io`` and ``lease.expire`` only fire inside the
        orchestrator leg (the study planes never touch those sites).
        """
        if self.fault_spec:
            return self.fault_spec
        return (
            "task:0.01:transient,"
            "cache.io:0.1:transient,"
            "store.corrupt:0.15,"
            "deadline:0.002:transient:2.5,"
            "worker.crash@attacks:0.05,"
            f"worker.hang@telescope:0.05:transient:{self.hang_delay:g},"
            "ledger.io:0.05:transient,"
            "lease.expire:0.25"
        )

    def plan(self) -> FaultPlan:
        return FaultPlan.parse(self.spec(), seed=self.fault_seed)


@dataclass
class ChaosReport:
    """Everything the soak observed, plus the pass/fail verdict."""

    spec: str
    seed: int
    fault_seed: int
    baseline_digests: Dict[str, str]
    chaos_digests: Dict[str, str]
    #: Digests of a third run resuming over the soaked run's journals
    #: and cache with faults still armed (corrupted blobs must
    #: quarantine and recompute, not poison the resume).
    resume_digests: Dict[str, str] = field(default_factory=dict)
    #: Validate-invariant violations over the soaked artifacts.
    violations: List[str] = field(default_factory=list)
    #: Online-operator snapshots that diverged from their batch oracles.
    parity_problems: List[str] = field(default_factory=list)
    worker_kills: int = 0
    hangs: int = 0
    pool_restarts: int = 0
    downgrades: int = 0
    quarantines: int = 0
    events_evicted: int = 0
    #: Oracle digests for the orchestrator leg's campaigns, keyed
    #: ``seed <n>/<artifact>`` (fault-free single-study runs).
    orchestrator_baseline: Dict[str, str] = field(default_factory=dict)
    #: Digests the recovered orchestrator recorded for those campaigns.
    orchestrator_digests: Dict[str, str] = field(default_factory=dict)
    #: SIGKILLs delivered to the child orchestrator (0 or 1 — 0 means
    #: the child finished before any journal landed, still recovered).
    orchestrator_kills: int = 0
    #: Lease recoveries the restarted orchestrator performed (killed
    #: leases requeued from the ledger) plus ``lease.expire`` requeues.
    orchestrator_recoveries: int = 0
    #: Torn ledger tails quarantined during replay.
    orchestrator_quarantined: int = 0
    #: Campaigns the recovered orchestrator left in a non-``done``
    #: state, with their errors.
    orchestrator_failures: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0
    metrics: Optional[StudyMetrics] = None

    @property
    def matched(self) -> bool:
        return self.baseline_digests == self.chaos_digests

    @property
    def passed(self) -> bool:
        return not self.problems()

    def problems(self) -> List[str]:
        """Every reason this soak would fail, human-readable."""
        found: List[str] = []
        for name in sorted(self.baseline_digests):
            if self.chaos_digests.get(name) != self.baseline_digests[name]:
                found.append(
                    f"artifact {name} diverged under faults "
                    f"(baseline {self.baseline_digests[name][:12]}, "
                    f"soaked {str(self.chaos_digests.get(name))[:12]})"
                )
            if (
                self.resume_digests
                and self.resume_digests.get(name)
                != self.baseline_digests[name]
            ):
                found.append(
                    f"artifact {name} diverged on resume replay "
                    f"(baseline {self.baseline_digests[name][:12]}, "
                    f"resumed {str(self.resume_digests.get(name))[:12]})"
                )
        found.extend(f"invariant violated: {v}" for v in self.violations)
        found.extend(f"operator parity: {p}" for p in self.parity_problems)
        for name in sorted(self.orchestrator_baseline):
            got = self.orchestrator_digests.get(name)
            if got != self.orchestrator_baseline[name]:
                found.append(
                    f"orchestrator artifact {name} diverged after crash "
                    f"recovery (oracle "
                    f"{self.orchestrator_baseline[name][:12]}, "
                    f"recovered {str(got)[:12]})"
                )
        found.extend(
            f"orchestrator campaign failed: {f}"
            for f in self.orchestrator_failures
        )
        return found

    def render(self) -> str:
        lines = [
            f"chaos soak (seed {self.seed}, fault seed {self.fault_seed})",
            f"  plan: {self.spec}",
            f"  worker kills survived: {self.worker_kills}",
            f"  hangs detected: {self.hangs}",
            f"  pool restarts: {self.pool_restarts}",
            f"  executor downgrades: {self.downgrades}",
            f"  blobs quarantined: {self.quarantines}",
            f"  ring events evicted: {self.events_evicted}",
            f"  artifact digests matched: {self.matched}",
            f"  resume replay matched: "
            f"{self.resume_digests == self.baseline_digests}",
        ]
        if self.orchestrator_baseline:
            lines.extend([
                f"  orchestrator kills delivered: "
                f"{self.orchestrator_kills}",
                f"  orchestrator lease recoveries: "
                f"{self.orchestrator_recoveries}",
                f"  orchestrator ledger tails quarantined: "
                f"{self.orchestrator_quarantined}",
                f"  orchestrator recovery matched: "
                f"{self.orchestrator_digests == self.orchestrator_baseline}",
            ])
        lines.append(f"  wall time: {self.wall_seconds:.1f}s")
        for problem in self.problems():
            lines.append(f"  FAIL: {problem}")
        return "\n".join(lines) + "\n"

    def metrics_json(self) -> str:
        if self.metrics is None:
            return "{}"
        return self.metrics.to_json()

    def raise_on_failure(self) -> None:
        problems = self.problems()
        if problems:
            raise ValidationError(
                "chaos soak failed: " + "; ".join(problems)
            )


def artifact_digests(results) -> Dict[str, str]:
    """SHA-256 over the canonical serialization of each plane store."""
    writer = results.telescope.writer
    flow_lines: List[str] = []
    for day in writer.days():
        flow_lines.extend(writer.lines_for_day(day))
    return {
        "scan.merged_db": _digest(results.merged_db.to_jsonl()),
        "attacks.log": _digest(results.schedule.log.to_jsonl()),
        "telescope.flowtuples": _digest("\n".join(flow_lines)),
    }


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _study_config(cfg: ChaosConfig, journal_dir: Optional[str]) -> StudyConfig:
    """The campaign config; ``journal_dir`` marks the soaked variant."""
    config = StudyConfig.quick(seed=cfg.seed)
    config.population = PopulationConfig(
        seed=cfg.seed, scale=cfg.scale, honeypot_scale=cfg.honeypot_scale,
    )
    config.scan.shards = cfg.shards
    config.attacks.workers = cfg.workers
    config.telescope.workers = cfg.workers
    if journal_dir is None:
        executor = "thread"  # the quiet oracle run
    else:
        executor = "process"  # the plane worker faults aim at
        config.scan.retries = cfg.retries
        config.attacks.retries = cfg.retries
        config.telescope.retries = cfg.retries
        config.journal_dir = journal_dir
        config.resume = True
        config.task_deadline = cfg.task_deadline
    config.executor = executor
    for sub in (config.scan, config.attacks, config.telescope):
        sub.executor = executor
    config.validate()
    return config


def _orchestrator_leg(
    cfg: ChaosConfig,
    plan: FaultPlan,
    workdir: str,
    baseline_digests: Dict[str, str],
    say: Callable[[str], Any],
) -> Dict[str, Any]:
    """SIGKILL a child orchestrator mid-campaign, recover from its ledger.

    Returns the ``orchestrator_*`` fields of :class:`ChaosReport`.  The
    leg runs two campaigns (``seed`` and ``seed + 1``); the first one's
    oracle digests are the already-computed study baseline (digests are
    invariant across shards/workers/executor), the second's come from a
    fault-free single-study run.
    """
    import signal
    import subprocess
    import sys

    import repro
    from repro.core.study import Study
    from repro.orchestrator import CampaignSpec, Orchestrator

    seeds = (cfg.seed, cfg.seed + 1)
    specs = {
        seed: CampaignSpec(
            seed=seed, scale=cfg.scale, honeypot_scale=cfg.honeypot_scale,
            shards=2, workers=2, retries=cfg.retries, executor="thread",
        )
        for seed in seeds
    }
    oracle: Dict[str, str] = {}
    for name, digest in baseline_digests.items():
        oracle[f"seed {cfg.seed}/{name}"] = digest
    say(f"orchestrator leg: oracle run for seed {seeds[1]}...\n")
    oracle_config = specs[seeds[1]].to_config(
        os.path.join(workdir, "orchestrator-oracle-journal")
    )
    for name, digest in artifact_digests(
        Study(oracle_config, cache=False).run()
    ).items():
        oracle[f"seed {seeds[1]}/{name}"] = digest

    state_dir = os.path.join(workdir, "orchestrator")
    journal_root = os.path.join(state_dir, "store", "journals")
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "repro", "orchestrate",
        "--state-dir", state_dir,
        "--seeds", ",".join(str(seed) for seed in seeds),
        "--scale", str(cfg.scale),
        "--honeypot-scale", str(cfg.honeypot_scale),
        "--shards", "2", "--workers", "2",
        "--retries", str(cfg.retries),
        "--max-active", "2",
        "--lease-timeout", str(cfg.lease_timeout),
        "--restart-budget", str(cfg.restart_budget),
        "--seed", str(cfg.fault_seed),
        "--inject-faults", cfg.spec(),
    ]
    say("orchestrator leg: launching the child orchestrator...\n")
    child = subprocess.Popen(
        command, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    kills = 0
    try:
        # Kill as soon as the first task journal lands: campaigns are
        # provably mid-flight, so recovery must replay real work.
        deadline = time.monotonic() + 180.0
        while time.monotonic() < deadline and child.poll() is None:
            if any(files for _, _, files in os.walk(journal_root)):
                break
            time.sleep(0.05)
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
            kills = 1
            say("orchestrator leg: SIGKILLed the child mid-campaign\n")
        else:  # pragma: no cover - child outran the poll loop
            say("orchestrator leg: child finished before the kill\n")
        child.wait()
    finally:
        if child.poll() is None:  # pragma: no cover
            child.kill()
            child.wait()

    say("orchestrator leg: recovering from the ledger in-process...\n")
    orchestrator = Orchestrator(
        state_dir,
        max_active=2,
        lease_timeout=cfg.lease_timeout,
        restart_budget=cfg.restart_budget,
    )
    try:
        with faults.injected(plan):
            # reuse=True: if the kill landed before a submit was
            # ledgered, the campaign is (re)submitted; otherwise the
            # recovered record answers and the ids line up.
            ids = {
                seed: orchestrator.submit(specs[seed], reuse=True)
                for seed in seeds
            }
            orchestrator.drain()
        queue = orchestrator.queue()
        digests: Dict[str, str] = {}
        failures: List[str] = []
        restarts = 0
        for seed, campaign_id in ids.items():
            doc = orchestrator.status(campaign_id)
            restarts += doc["restarts"]
            if doc["state"] != "done":
                failures.append(
                    f"{campaign_id} (seed {seed}) ended "
                    f"{doc['state']!r}: {doc.get('error')}"
                )
                continue
            for name, digest in doc["digests"].items():
                digests[f"seed {seed}/{name}"] = digest
    finally:
        orchestrator.shutdown()
    return {
        "orchestrator_baseline": oracle,
        "orchestrator_digests": digests,
        "orchestrator_kills": kills,
        # Per-campaign restarts already count the ledger-replay requeues
        # (queue["recovered"]) alongside any lease.expire requeues.
        "orchestrator_recoveries": restarts,
        "orchestrator_quarantined": queue["ledger_quarantined"],
        "orchestrator_failures": failures,
    }


def run_chaos(
    config: Optional[ChaosConfig] = None,
    *,
    progress: Optional[Callable[[str], Any]] = None,
) -> ChaosReport:
    """Run the soak; returns the report (raise via ``raise_on_failure``)."""
    from repro.core.validate import default_registry
    from repro.stream.service import CampaignService, StreamConfig

    cfg = config or ChaosConfig()
    say = progress or (lambda text: None)
    plan = cfg.plan()
    workdir = cfg.workdir
    cleanup = workdir is None
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    started = time.perf_counter()
    try:
        say(f"chaos plan: {plan.describe()}\n")
        say("running the fault-free baseline...\n")
        baseline = Study(_study_config(cfg, None), cache=False)
        baseline_digests = artifact_digests(baseline.run())

        say(
            f"running the soaked campaign (process executor, "
            f"{cfg.workers} workers, retries {cfg.retries}, restart "
            f"budget {cfg.restart_budget}, hang timeout "
            f"{cfg.hang_timeout:g}s)...\n"
        )
        cache_dir = os.path.join(workdir, "cache")
        journal_dir = os.path.join(workdir, "journal")
        cache = PhaseCache(directory=cache_dir)
        study = Study(_study_config(cfg, journal_dir), cache=cache)
        with faults.injected(plan), tasks.pool_supervision(
            hang_timeout=cfg.hang_timeout,
            restart_budget=cfg.restart_budget,
        ):
            results = study.run()
            say("validating the soaked artifacts...\n")
            violations = [
                f"{violation.invariant}: {violation.message}"
                for violation in study.validate(default_registry())
            ]
        chaos_digests = artifact_digests(results)

        # A third run resumes over the journals and phase cache the
        # soaked run left behind, faults still armed: corrupted blobs
        # must be quarantined and recomputed on read, and the replayed
        # artifacts must still match the baseline bytes.
        say("resuming over the soaked journals and cache...\n")
        resume_cache = PhaseCache(directory=cache_dir)
        resumed = Study(_study_config(cfg, journal_dir), cache=resume_cache)
        with faults.injected(plan), tasks.pool_supervision(
            hang_timeout=cfg.hang_timeout,
            restart_budget=cfg.restart_budget,
        ):
            resume_digests = artifact_digests(resumed.run())

        # Replay the soaked stores through the streaming service with a
        # bounded publish queue: checks online/batch operator parity
        # survives backpressure and puts bus accounting in the metrics.
        say("replaying the soaked stores through the stream service...\n")
        service = CampaignService(
            stream=StreamConfig(
                batch_size=512, queue_capacity=8, publish_policy="block",
            ),
            study=study,
        )
        service.run()
        if service.state == "done":
            parity = service.verify_against_batch()
        else:
            parity = [
                f"streamed replay ended in state {service.state!r}: "
                f"{service.error}"
            ]

        orchestrator_fields: Dict[str, Any] = {}
        if cfg.orchestrator_leg:
            orchestrator_fields = _orchestrator_leg(
                cfg, plan, workdir, baseline_digests, say,
            )

        if getattr(cache, "quarantined", None):
            study.metrics.record_quarantines(cache.quarantined)
        if getattr(resume_cache, "quarantined", None):
            study.metrics.record_quarantines(resume_cache.quarantined)
        study.metrics.quarantined.extend(resumed.metrics.quarantined)
        supervisor = study.metrics.supervisor
        report = ChaosReport(
            spec=cfg.spec(),
            seed=cfg.seed,
            fault_seed=cfg.fault_seed,
            baseline_digests=baseline_digests,
            chaos_digests=chaos_digests,
            resume_digests=resume_digests,
            violations=violations,
            parity_problems=parity,
            worker_kills=sum(
                1 for row in supervisor if row.reason == "worker-crash"
            ),
            hangs=sum(
                1 for row in supervisor if row.reason == "hang-timeout"
            ),
            pool_restarts=sum(
                1 for row in supervisor if row.action == "pool-restart"
            ),
            downgrades=sum(
                1 for row in supervisor if row.action == "downgrade"
            ),
            quarantines=len(study.metrics.quarantined),
            events_evicted=service.bus.events.dropped,
            wall_seconds=time.perf_counter() - started,
            metrics=study.metrics,
            **orchestrator_fields,
        )
        return report
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)
