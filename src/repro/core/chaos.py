"""The seeded chaos soak: a full campaign under randomized faults.

This is the supervision layer's end-to-end proof.  :func:`run_chaos`
runs the same 1:N campaign twice:

1. **baseline** — fault-free, thread executor, no cache; its three plane
   stores (merged scan DB, attack-event log, FlowTuple capture) are
   digested as the byte-identity oracle.
2. **soaked** — process executor with a seeded
   :class:`~repro.core.faults.FaultPlan` spanning every injection site:
   transient task faults, cache I/O faults, storage corruption (caught
   by the integrity envelopes), injected task delays overrunning the
   hard deadline, worker crashes (``os._exit`` inside pool workers —
   the pool supervisor rebuilds the pool and requeues the in-flight
   keys) and worker hangs (tripping the no-progress watchdog).
   Retries, journals and resume are all enabled, exactly as a
   production invocation would arm them.

Because every supervised task is a pure function of its derived PRNG
key, all of that violence must not move a single byte: the soaked run's
artifact digests are compared against the baseline, the validate
invariants are re-run over the soaked artifacts, and the soaked stores
are then replayed through the streaming service (bounded publish queue,
``block`` policy) so the online operators can be checked against their
batch oracles and the bus/ring overflow accounting lands in the
metrics.  Any divergence raises
:class:`~repro.net.errors.ValidationError` (CLI exit code 5).

The fault plan is *randomized but seeded*: which tasks crash their
worker, which blobs are corrupted, which attempts fail is drawn from
``fault_seed`` via the same keyed-PRNG discipline as the rest of the
pipeline, so a failing soak reproduces exactly from its seed pair.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core import faults, tasks
from repro.core.config import StudyConfig
from repro.core.engine import PhaseCache
from repro.core.faults import FaultPlan
from repro.core.metrics import StudyMetrics
from repro.core.study import Study
from repro.internet.population import PopulationConfig
from repro.net.errors import ValidationError

__all__ = ["ChaosConfig", "ChaosReport", "run_chaos"]


@dataclass
class ChaosConfig:
    """Knobs for one chaos soak (defaults match the CI soak job)."""

    seed: int = 7
    #: Seed of the randomized fault plan (independent of the study seed,
    #: so the same world can be soaked under many failure schedules).
    fault_seed: int = 93
    scale: int = 4096
    honeypot_scale: int = 256
    workers: int = 4
    shards: int = 4
    retries: int = 3
    restart_budget: int = 3
    #: The pool supervisor's no-progress window (seconds); must sit well
    #: under ``hang_delay`` so an injected hang is detected, and above
    #: any honest task's runtime so clean pools are never restarted.
    hang_timeout: float = 5.0
    #: How long a ``worker.hang`` verdict makes the worker sleep.
    hang_delay: float = 20.0
    #: Soft:hard task deadline armed during the soak; the injected
    #: ``deadline`` delay overruns the hard limit, forcing a supervised
    #: retry.
    task_deadline: str = "1:2"
    #: Override the generated fault spec (``--inject-faults`` grammar).
    fault_spec: Optional[str] = None
    #: Working directory for the soaked run's cache + journals; a
    #: temporary directory (removed afterwards) when unset.
    workdir: Optional[str] = None

    def spec(self) -> str:
        """The fault spec: every site armed, worker faults plane-scoped.

        ``worker.crash`` aims at the attacks plane and ``worker.hang``
        at the telescope plane so the two recovery paths are observed
        independently — a crash breaking a pool mid-generation would
        otherwise reshuffle which hang verdicts ever execute.
        """
        if self.fault_spec:
            return self.fault_spec
        return (
            "task:0.01:transient,"
            "cache.io:0.1:transient,"
            "store.corrupt:0.15,"
            "deadline:0.002:transient:2.5,"
            "worker.crash@attacks:0.05,"
            f"worker.hang@telescope:0.05:transient:{self.hang_delay:g}"
        )

    def plan(self) -> FaultPlan:
        return FaultPlan.parse(self.spec(), seed=self.fault_seed)


@dataclass
class ChaosReport:
    """Everything the soak observed, plus the pass/fail verdict."""

    spec: str
    seed: int
    fault_seed: int
    baseline_digests: Dict[str, str]
    chaos_digests: Dict[str, str]
    #: Digests of a third run resuming over the soaked run's journals
    #: and cache with faults still armed (corrupted blobs must
    #: quarantine and recompute, not poison the resume).
    resume_digests: Dict[str, str] = field(default_factory=dict)
    #: Validate-invariant violations over the soaked artifacts.
    violations: List[str] = field(default_factory=list)
    #: Online-operator snapshots that diverged from their batch oracles.
    parity_problems: List[str] = field(default_factory=list)
    worker_kills: int = 0
    hangs: int = 0
    pool_restarts: int = 0
    downgrades: int = 0
    quarantines: int = 0
    events_evicted: int = 0
    wall_seconds: float = 0.0
    metrics: Optional[StudyMetrics] = None

    @property
    def matched(self) -> bool:
        return self.baseline_digests == self.chaos_digests

    @property
    def passed(self) -> bool:
        return self.matched and not self.violations and not self.parity_problems

    def problems(self) -> List[str]:
        """Every reason this soak would fail, human-readable."""
        found: List[str] = []
        for name in sorted(self.baseline_digests):
            if self.chaos_digests.get(name) != self.baseline_digests[name]:
                found.append(
                    f"artifact {name} diverged under faults "
                    f"(baseline {self.baseline_digests[name][:12]}, "
                    f"soaked {str(self.chaos_digests.get(name))[:12]})"
                )
            if (
                self.resume_digests
                and self.resume_digests.get(name)
                != self.baseline_digests[name]
            ):
                found.append(
                    f"artifact {name} diverged on resume replay "
                    f"(baseline {self.baseline_digests[name][:12]}, "
                    f"resumed {str(self.resume_digests.get(name))[:12]})"
                )
        found.extend(f"invariant violated: {v}" for v in self.violations)
        found.extend(f"operator parity: {p}" for p in self.parity_problems)
        return found

    def render(self) -> str:
        lines = [
            f"chaos soak (seed {self.seed}, fault seed {self.fault_seed})",
            f"  plan: {self.spec}",
            f"  worker kills survived: {self.worker_kills}",
            f"  hangs detected: {self.hangs}",
            f"  pool restarts: {self.pool_restarts}",
            f"  executor downgrades: {self.downgrades}",
            f"  blobs quarantined: {self.quarantines}",
            f"  ring events evicted: {self.events_evicted}",
            f"  artifact digests matched: {self.matched}",
            f"  resume replay matched: "
            f"{self.resume_digests == self.baseline_digests}",
            f"  wall time: {self.wall_seconds:.1f}s",
        ]
        for problem in self.problems():
            lines.append(f"  FAIL: {problem}")
        return "\n".join(lines) + "\n"

    def metrics_json(self) -> str:
        if self.metrics is None:
            return "{}"
        return self.metrics.to_json()

    def raise_on_failure(self) -> None:
        problems = self.problems()
        if problems:
            raise ValidationError(
                "chaos soak failed: " + "; ".join(problems)
            )


def artifact_digests(results) -> Dict[str, str]:
    """SHA-256 over the canonical serialization of each plane store."""
    writer = results.telescope.writer
    flow_lines: List[str] = []
    for day in writer.days():
        flow_lines.extend(writer.lines_for_day(day))
    return {
        "scan.merged_db": _digest(results.merged_db.to_jsonl()),
        "attacks.log": _digest(results.schedule.log.to_jsonl()),
        "telescope.flowtuples": _digest("\n".join(flow_lines)),
    }


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _study_config(cfg: ChaosConfig, journal_dir: Optional[str]) -> StudyConfig:
    """The campaign config; ``journal_dir`` marks the soaked variant."""
    config = StudyConfig.quick(seed=cfg.seed)
    config.population = PopulationConfig(
        seed=cfg.seed, scale=cfg.scale, honeypot_scale=cfg.honeypot_scale,
    )
    config.scan.shards = cfg.shards
    config.attacks.workers = cfg.workers
    config.telescope.workers = cfg.workers
    if journal_dir is None:
        executor = "thread"  # the quiet oracle run
    else:
        executor = "process"  # the plane worker faults aim at
        config.scan.retries = cfg.retries
        config.attacks.retries = cfg.retries
        config.telescope.retries = cfg.retries
        config.journal_dir = journal_dir
        config.resume = True
        config.task_deadline = cfg.task_deadline
    config.executor = executor
    for sub in (config.scan, config.attacks, config.telescope):
        sub.executor = executor
    config.validate()
    return config


def run_chaos(
    config: Optional[ChaosConfig] = None,
    *,
    progress: Optional[Callable[[str], Any]] = None,
) -> ChaosReport:
    """Run the soak; returns the report (raise via ``raise_on_failure``)."""
    from repro.core.validate import default_registry
    from repro.stream.service import CampaignService, StreamConfig

    cfg = config or ChaosConfig()
    say = progress or (lambda text: None)
    plan = cfg.plan()
    workdir = cfg.workdir
    cleanup = workdir is None
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    started = time.perf_counter()
    try:
        say(f"chaos plan: {plan.describe()}\n")
        say("running the fault-free baseline...\n")
        baseline = Study(_study_config(cfg, None), cache=False)
        baseline_digests = artifact_digests(baseline.run())

        say(
            f"running the soaked campaign (process executor, "
            f"{cfg.workers} workers, retries {cfg.retries}, restart "
            f"budget {cfg.restart_budget}, hang timeout "
            f"{cfg.hang_timeout:g}s)...\n"
        )
        cache_dir = os.path.join(workdir, "cache")
        journal_dir = os.path.join(workdir, "journal")
        cache = PhaseCache(directory=cache_dir)
        study = Study(_study_config(cfg, journal_dir), cache=cache)
        with faults.injected(plan), tasks.pool_supervision(
            hang_timeout=cfg.hang_timeout,
            restart_budget=cfg.restart_budget,
        ):
            results = study.run()
            say("validating the soaked artifacts...\n")
            violations = [
                f"{violation.invariant}: {violation.message}"
                for violation in study.validate(default_registry())
            ]
        chaos_digests = artifact_digests(results)

        # A third run resumes over the journals and phase cache the
        # soaked run left behind, faults still armed: corrupted blobs
        # must be quarantined and recomputed on read, and the replayed
        # artifacts must still match the baseline bytes.
        say("resuming over the soaked journals and cache...\n")
        resume_cache = PhaseCache(directory=cache_dir)
        resumed = Study(_study_config(cfg, journal_dir), cache=resume_cache)
        with faults.injected(plan), tasks.pool_supervision(
            hang_timeout=cfg.hang_timeout,
            restart_budget=cfg.restart_budget,
        ):
            resume_digests = artifact_digests(resumed.run())

        # Replay the soaked stores through the streaming service with a
        # bounded publish queue: checks online/batch operator parity
        # survives backpressure and puts bus accounting in the metrics.
        say("replaying the soaked stores through the stream service...\n")
        service = CampaignService(
            stream=StreamConfig(
                batch_size=512, queue_capacity=8, publish_policy="block",
            ),
            study=study,
        )
        service.run()
        if service.state == "done":
            parity = service.verify_against_batch()
        else:
            parity = [
                f"streamed replay ended in state {service.state!r}: "
                f"{service.error}"
            ]

        if getattr(cache, "quarantined", None):
            study.metrics.record_quarantines(cache.quarantined)
        if getattr(resume_cache, "quarantined", None):
            study.metrics.record_quarantines(resume_cache.quarantined)
        study.metrics.quarantined.extend(resumed.metrics.quarantined)
        supervisor = study.metrics.supervisor
        report = ChaosReport(
            spec=cfg.spec(),
            seed=cfg.seed,
            fault_seed=cfg.fault_seed,
            baseline_digests=baseline_digests,
            chaos_digests=chaos_digests,
            resume_digests=resume_digests,
            violations=violations,
            parity_problems=parity,
            worker_kills=sum(
                1 for row in supervisor if row.reason == "worker-crash"
            ),
            hangs=sum(
                1 for row in supervisor if row.reason == "hang-timeout"
            ),
            pool_restarts=sum(
                1 for row in supervisor if row.action == "pool-restart"
            ),
            downgrades=sum(
                1 for row in supervisor if row.action == "downgrade"
            ),
            quarantines=len(study.metrics.quarantined),
            events_evicted=service.bus.events.dropped,
            wall_seconds=time.perf_counter() - started,
            metrics=study.metrics,
        )
        return report
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)
