"""Core: study configuration, orchestration, results and report rendering."""

from repro.core.config import StudyConfig
from repro.core.engine import (
    PhaseCache,
    PhaseGraph,
    PhaseSpec,
    SerialExecutor,
    StudyEngine,
    ThreadedExecutor,
    build_study_graph,
    config_fingerprint,
    default_cache,
)
from repro.core.fidelity import FidelityReport, FidelityRow, score_study
from repro.core.integrity import (
    QuarantineRecord,
    quarantine_file,
    unwrap_envelope,
    wrap_envelope,
)
from repro.core.metrics import JournalMetric, PhaseMetric, StudyMetrics
from repro.core.report import (
    format_table,
    render_case_studies,
    render_figure2,
    render_figure7,
    render_figure8,
    render_figure9,
    render_intersection,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
    render_table10,
)
from repro.core.scaling import apportion, scale_count
from repro.core.study import Study, StudyResults
from repro.core.tasks import TaskDeadline, TaskJournal, TaskStall
from repro.core.validate import (
    Invariant,
    InvariantRegistry,
    Violation,
    default_registry,
    run_validation,
)
from repro.core.taxonomy import (
    MISCONFIG_LABELS,
    MISCONFIG_PROTOCOL,
    AttackType,
    Misconfig,
    TrafficClass,
)

__all__ = [
    "AttackType",
    "FidelityReport",
    "FidelityRow",
    "score_study",
    "Invariant",
    "InvariantRegistry",
    "JournalMetric",
    "MISCONFIG_LABELS",
    "MISCONFIG_PROTOCOL",
    "Misconfig",
    "PhaseCache",
    "PhaseGraph",
    "PhaseMetric",
    "PhaseSpec",
    "QuarantineRecord",
    "SerialExecutor",
    "Study",
    "StudyConfig",
    "StudyEngine",
    "StudyMetrics",
    "StudyResults",
    "TaskDeadline",
    "TaskJournal",
    "TaskStall",
    "ThreadedExecutor",
    "TrafficClass",
    "Violation",
    "apportion",
    "build_study_graph",
    "config_fingerprint",
    "default_cache",
    "default_registry",
    "quarantine_file",
    "run_validation",
    "unwrap_envelope",
    "wrap_envelope",
    "format_table",
    "render_case_studies",
    "render_figure2",
    "render_figure7",
    "render_figure8",
    "render_figure9",
    "render_intersection",
    "render_table4",
    "render_table5",
    "render_table6",
    "render_table7",
    "render_table8",
    "render_table10",
    "scale_count",
]
