"""Backend-pluggable column primitives and the unified ColumnStore API.

The three measurement-plane stores — the scan plane's
:class:`~repro.scanner.records.ScanDatabase`, the attack plane's
:class:`~repro.honeypots.events.EventStore` and the telescope plane's
:class:`~repro.telescope.flowtuple.FlowTupleWriter` — all keep their data
as parallel columns.  This module is the layer underneath them:

* **column primitives** behind one sequence-shaped API
  (:func:`make_numeric_column` / :func:`make_object_column`): the pure-Python
  backend stores numerics in compact :mod:`array` columns exactly as before,
  the NumPy backend in growable typed buffers (:class:`NumpyColumn`) whose
  ``view()`` exposes a contiguous ``ndarray`` for masked filters, grouped
  counts and ``lexsort``-based canonical ordering;
* **backend selection** (:func:`resolve_backend`): ``"python"``,
  ``"numpy"`` or ``"auto"``; NumPy is an *optional* dependency, so
  ``"auto"`` degrades to pure Python when it is missing and an explicit
  ``"numpy"`` without the package is a :class:`~repro.net.errors.ConfigError`
  (the CLI's exit-code-2 path);
* the :class:`ColumnStore` protocol the analysis consumers type against
  (``where`` / ``count_by`` / ``iter_rows`` / ``sorted_canonical`` /
  ``append_batch``), so they depend on the query surface rather than on a
  concrete store;
* the shared :func:`_warn_deprecated` helper behind every deprecation shim,
  so removal releases are announced uniformly.

**Determinism contract.**  Both backends produce byte-identical artifacts:
numeric columns hand back native Python scalars (``NumpyColumn.__getitem__``
unboxes via ``.item()``), ``lexsort`` is stable like Python's ``sorted``,
and the batch PRNG draws (:meth:`~repro.net.prng.RandomStream.uniform_array`)
are bit-equal to sequential scalar draws.  The pure-Python paths therefore
stay live as differential oracles for the vectorized ones.
"""

from __future__ import annotations

import warnings
from array import array
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.net.errors import ConfigError

try:  # NumPy is optional: the reproduction must run on a bare interpreter.
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-less CI
    np = None  # type: ignore[assignment]

__all__ = [
    "BACKENDS",
    "ColumnStore",
    "HAVE_NUMPY",
    "NumpyColumn",
    "make_numeric_column",
    "make_object_column",
    "numpy_available",
    "resolve_backend",
]

#: Accepted ``backend`` knob values, in documentation order.
BACKENDS = ("python", "numpy", "auto")

#: Whether the optional NumPy dependency imported.
HAVE_NUMPY = np is not None

#: Column kind → compact ``array`` typecode (the pure-Python storage).
_PY_TYPECODES = {"u64": "Q", "u32": "L", "i64": "q", "f64": "d"}

#: Column kind → NumPy dtype.  Unsigned kinds map to ``int64``: every
#: stored value (IPv4 address, port, byte count) fits comfortably, and
#: signed arithmetic avoids surprise wrap-around in vector expressions.
_NP_DTYPES = {"u64": "int64", "u32": "int64", "i64": "int64", "f64": "float64"}


def numpy_available() -> bool:
    """Whether the ``numpy`` backend can actually be selected."""
    return HAVE_NUMPY


def resolve_backend(choice: Optional[str]) -> str:
    """Collapse a backend knob to the concrete ``"python"`` or ``"numpy"``.

    ``None`` is the sub-config inherit-sentinel and means ``"auto"``;
    ``"auto"`` picks NumPy when it is importable and pure Python otherwise.
    An unknown value, or an explicit ``"numpy"`` without the optional
    dependency installed, raises :class:`~repro.net.errors.ConfigError`
    (the CLI maps it to exit code 2).
    """
    if choice is None:
        choice = "auto"
    if choice not in BACKENDS:
        raise ConfigError(
            f"backend must be one of {', '.join(BACKENDS)}; got {choice!r}"
        )
    if choice == "auto":
        return "numpy" if HAVE_NUMPY else "python"
    if choice == "numpy" and not HAVE_NUMPY:
        raise ConfigError(
            "backend 'numpy' requires the optional numpy dependency "
            "(install the 'numpy' extra); use 'python' or 'auto' instead"
        )
    return choice


class NumpyColumn:
    """A growable typed column over a NumPy buffer.

    Mirrors the mutable-sequence surface of the ``array`` columns it
    replaces — ``append`` / ``extend`` / indexing (negative indexes
    included) / iteration — so row views and legacy call sites work
    unchanged, while :meth:`view` exposes the live ``ndarray`` prefix for
    vectorized masks, grouped counts and ``lexsort``.

    ``__getitem__`` unboxes to native Python scalars: everything read out
    of a column serializes (``json``, string formatting) exactly like the
    pure-Python backend, which is half of the byte-identity contract.
    """

    __slots__ = ("_data", "_n")

    def __init__(self, dtype: Any, values: Optional[Iterable[Any]] = None) -> None:
        self._data = np.empty(16, dtype=dtype)
        self._n = 0
        if values is not None:
            self.extend(values)

    # -- growth ----------------------------------------------------------

    def _reserve(self, needed: int) -> None:
        capacity = len(self._data)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=self._data.dtype)
        grown[: self._n] = self._data[: self._n]
        self._data = grown

    def append(self, value: Any) -> None:
        self._reserve(self._n + 1)
        self._data[self._n] = value
        self._n += 1

    def extend(self, values: Iterable[Any]) -> None:
        if not isinstance(values, np.ndarray):
            if not isinstance(values, (list, tuple)):
                values = list(values)
            values = np.asarray(values, dtype=self._data.dtype)
        count = len(values)
        self._reserve(self._n + count)
        self._data[self._n : self._n + count] = values
        self._n += count

    # -- vector access ----------------------------------------------------

    def view(self):
        """The live ``ndarray`` prefix (no copy) for vector operations."""
        return self._data[: self._n]

    def take(self, order: Any) -> "NumpyColumn":
        """A new column holding ``self[i] for i in order`` (fancy index)."""
        picked = NumpyColumn.__new__(NumpyColumn)
        picked._data = self._data[: self._n][order]
        picked._n = len(picked._data)
        return picked

    def tolist(self) -> list:
        return self._data[: self._n].tolist()

    # -- sequence surface --------------------------------------------------

    def _index(self, index: int) -> int:
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(f"column index {index} out of range")
        return index

    def __getitem__(self, index: int) -> Any:
        return self._data[self._index(index)].item()

    def __setitem__(self, index: int, value: Any) -> None:
        self._data[self._index(index)] = value

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data[: self._n].tolist())

    def __repr__(self) -> str:
        return f"NumpyColumn({self._data.dtype}, n={self._n})"


def make_numeric_column(
    kind: str, backend: str, values: Optional[Iterable[Any]] = None
):
    """A numeric column of ``kind`` (``u64``/``u32``/``i64``/``f64``).

    The pure-Python backend returns a compact :class:`array.array` (exactly
    the pre-backend storage); the NumPy backend a :class:`NumpyColumn`.
    """
    if backend == "numpy":
        return NumpyColumn(_NP_DTYPES[kind], values)
    return array(_PY_TYPECODES[kind], values or ())


def make_object_column(values: Optional[Iterable[Any]] = None) -> list:
    """An object column (labels, enums, byte payloads) — a plain list on
    both backends; vector passes over object columns gain nothing from
    NumPy's object dtype."""
    return list(values) if values is not None else []


def first_occurrence_counts(view) -> Dict[Any, int]:
    """Grouped counts of a numeric ``ndarray`` in first-occurrence order.

    The vectorized twin of the ``dict.get`` counting loop: the result dict
    is keyed in the order values first appear, exactly as the pure-Python
    path builds it, so serialized artifacts stay byte-identical.
    """
    uniques, first_positions, counts = np.unique(
        view, return_index=True, return_counts=True
    )
    order = np.argsort(first_positions, kind="stable")
    return dict(
        zip(uniques[order].tolist(), counts[order].tolist())
    )


@runtime_checkable
class ColumnStore(Protocol):
    """The unified query surface of the three measurement-plane stores.

    Analysis consumers (misconfig, country, device type, attack origins,
    recurrence, RSDoS) accept any store satisfying this protocol instead of
    importing a concrete store class.  ``where`` narrows to a new store of
    the same backend, ``count_by`` groups with optional distinct-value
    counting, ``iter_rows`` yields row views in insertion order,
    ``sorted_canonical`` re-orders into the plane's canonical merge order
    and ``append_batch`` ingests many rows in one columnar pass.
    """

    def __len__(self) -> int: ...

    def append_batch(self, rows: Iterable[Any]) -> int: ...

    def where(self, **filters: Any) -> "ColumnStore": ...

    def count_by(
        self, column: str, *, unique: Optional[str] = None
    ) -> Dict[Any, int]: ...

    def iter_rows(self) -> Iterator[Any]: ...

    def sorted_canonical(self) -> "ColumnStore": ...

    def column(self, name: str) -> Any: ...


def _warn_deprecated(
    what: str, *, use: str, removal: str = "2.0", stacklevel: int = 3
) -> None:
    """Issue the project's uniform deprecation warning.

    Every shim routes through here so each carries a removal release and
    a replacement spelling; tests pin that each shim warns exactly once
    per call site.
    """
    warnings.warn(
        f"{what} is deprecated and will be removed in repro {removal}; "
        f"{use}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
