"""Keyed-task execution for the attack/telescope measurement plane.

The attack month shards into per-(honeypot, day) tasks and the telescope
month into per-(protocol, day) tasks; every task draws from its own
:meth:`~repro.net.prng.RandomStream.derive` child stream, so its output is
a pure function of the task key and the tasks can run on a thread pool in
any order.  :func:`run_tasks` is the tiny executor both planes share:
results come back in submission order regardless of worker count, which is
the first half of the byte-identical merge guarantee (the second half is
the canonical sort each plane applies to the merged output).

:class:`TaskTiming` is the per-task metrics row surfaced in
``StudyMetrics`` (and ``--metrics-json``) so the scaling benchmark can
show where the wall time went — the attack-plane sibling of
:class:`~repro.scanner.shard.ShardTiming`.
"""

from __future__ import annotations

import gc
import sys
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence, TypeVar

__all__ = ["TaskTiming", "paused_gc", "run_tasks"]

_T = TypeVar("_T")


@dataclass
class TaskTiming:
    """Wall-time accounting for one (unit, day) generation task."""

    plane: str    # "attacks" or "telescope"
    unit: str     # honeypot name, protocol, or "rsdos"
    day: int
    seconds: float
    events: int   # attack events or flowtuple records produced

    @property
    def events_per_second(self) -> float:
        """Throughput of this task (0 when too fast to measure)."""
        return self.events / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form for the metrics payload."""
        return {
            "plane": self.plane,
            "unit": self.unit,
            "day": self.day,
            "seconds": round(self.seconds, 6),
            "events": self.events,
            "events_per_second": round(self.events_per_second, 1),
        }


@contextmanager
def paused_gc() -> Iterator[None]:
    """Suspend cyclic garbage collection for the duration of a batch.

    Generation tasks allocate hundreds of thousands of immutable records
    that are all retained for the merge and form no reference cycles, so
    every generational collection triggered mid-batch rescans an ever
    larger live heap for nothing.  Pausing the collector while a batch
    drains roughly halves telescope emission time at benchmark scales;
    normal collection resumes (and catches up on its own schedule) on
    exit, even on error.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def run_tasks(thunks: Sequence[Callable[[], _T]], workers: int) -> List[_T]:
    """Run independent task thunks, returning results in submission order.

    ``workers <= 1`` executes inline (the serial oracle path); anything
    larger fans out on a thread pool.  Either way the result list order is
    the submission order, never the completion order, so callers can merge
    without knowing how the work was scheduled.  Cyclic GC is paused while
    the batch drains (see :func:`paused_gc`).
    """
    if workers <= 1 or len(thunks) <= 1:
        with paused_gc():
            return [thunk() for thunk in thunks]

    # Submit contiguous chunks, not individual tasks: a month shards into
    # hundreds of small (unit, day) tasks, and per-future queue traffic
    # would swamp them.  ``workers * 4`` chunks keeps the pool load-balanced
    # when task sizes are skewed (telnet days dwarf xmpp days) while the
    # per-chunk overhead stays negligible.
    def run_chunk(chunk: Sequence[Callable[[], _T]]) -> List[_T]:
        return [thunk() for thunk in chunk]

    n_chunks = min(len(thunks), workers * 4)
    bounds = [len(thunks) * i // n_chunks for i in range(n_chunks + 1)]
    chunks = [thunks[bounds[i]:bounds[i + 1]] for i in range(n_chunks)]

    # The tasks are coarse, independent, pure-CPU units that share nothing
    # but the pool: the interpreter's default 5 ms switch interval just
    # thrashes caches between them.  Widen it while the pool drains so the
    # threaded path costs about what the inline path does even when the
    # box has fewer cores than workers.
    previous = sys.getswitchinterval()
    sys.setswitchinterval(0.05)
    try:
        with paused_gc(), ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_chunk, chunk) for chunk in chunks]
            return [result for future in futures for result in future.result()]
    finally:
        sys.setswitchinterval(previous)
