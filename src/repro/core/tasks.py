"""Supervised keyed-task execution for the sharded measurement planes.

The attack month shards into per-(honeypot, day) tasks, the telescope
month into per-(protocol, day) tasks, and the scan campaign into
per-(protocol, shard) tasks; every task draws from its own
:meth:`~repro.net.prng.RandomStream.derive` child stream, so its output is
a pure function of the task key and the tasks can run on a thread pool in
any order.  :func:`run_tasks` is the executor all three planes share:
results come back in submission order regardless of worker count, which is
the first half of the byte-identical merge guarantee (the second half is
the canonical sort each plane applies to the merged output).

Beyond scheduling, ``run_tasks`` is a *supervisor*:

* every task carries a :class:`TaskRef` ``(plane, unit, day/shard)``;
  a raised exception is wrapped in :class:`~repro.net.errors.TaskFailure`
  naming the task, and outstanding futures are cancelled instead of
  running to completion behind the error;
* transient failures (:class:`~repro.net.errors.TransientFaultError`, the
  stand-in for packet loss and rate-limited peers) are retried up to
  ``retries`` times.  Tasks are pure functions of derived PRNG keys, so a
  retry is byte-identical to an undisturbed first attempt — the retried
  campaign's output cannot differ;
* a :class:`TaskJournal` (one atomic, envelope-sealed pickle per completed
  task, under the cache directory) makes campaigns crash-safe: a resumed
  run loads the journaled results of completed tasks and re-executes only
  the rest, producing byte-identical output to an uninterrupted run.
  Every entry is a checksummed :mod:`repro.core.integrity` envelope, so a
  damaged or stale entry is *detected* on read, quarantined (never
  deleted, never re-read), and transparently recomputed — self-healing
  resume;
* a :class:`TaskDeadline` supervises task wall time: overrunning the soft
  deadline records a :class:`TaskStall` warning row (surfaced in
  ``StudyMetrics``), overrunning the hard deadline raises
  :class:`~repro.net.errors.TaskDeadlineError` — a transient fault, so it
  flows through the same ``retries`` path and a retried task is still
  byte-identical (tasks are pure functions of their derived PRNG keys);
* the process executor runs under a **pool supervisor**: abrupt worker
  death (``BrokenProcessPool`` — a SIGKILL, an OOM kill, or the injected
  ``worker.crash`` site) and pool-wide stalls (no chunk completing within
  ``hang_timeout`` — the ``worker.hang`` site) tear the pool down,
  rebuild it, and requeue only the tasks that never completed; because
  every task is a pure function of its derived PRNG key, the re-executed
  tasks are byte-identical to what the dead workers would have produced.
  A bounded restart budget (:data:`DEFAULT_RESTART_BUDGET`) circuit-breaks
  the supervisor down the executor ladder — process pool → thread pool →
  inline serial — and every restart/downgrade is recorded as a
  :class:`SupervisorEvent` on the batch's :class:`ExecutorStats`
  (surfaced as supervisor rows in ``StudyMetrics``).

:class:`TaskTiming` is the per-task metrics row surfaced in
``StudyMetrics`` (and ``--metrics-json``) so the scaling benchmark can
show where the wall time went — the attack-plane sibling of
:class:`~repro.scanner.shard.ShardTiming`.
"""

from __future__ import annotations

import functools
import gc
import os
import pickle
import re
import sys
import tempfile
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import wait as futures_wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.core import faults
from repro.core.integrity import (
    QuarantineRecord,
    quarantine_file,
    unwrap_envelope,
    wrap_envelope,
)
from repro.net.errors import (
    ConfigError,
    EnvelopeError,
    FatalFaultError,
    FaultError,
    TaskDeadlineError,
    TaskFailure,
    TransientFaultError,
)

__all__ = [
    "TaskRef",
    "TaskJournal",
    "TaskTiming",
    "TaskStall",
    "TaskDeadline",
    "ChunkTiming",
    "ExecutorStats",
    "SupervisorEvent",
    "ProcessPlan",
    "EXECUTORS",
    "DEFAULT_RESTART_BUDGET",
    "resolve_executor",
    "pool_supervision",
    "task_checkpoint",
    "paused_gc",
    "run_tasks",
]

_T = TypeVar("_T")

#: Journal entry layout version; bumped entries are treated as misses.
#: Version 2: raw pickle payload sealed in a checksummed
#: :mod:`repro.core.integrity` envelope (schema/kind/key/fingerprint).
JOURNAL_SCHEMA_VERSION = 2

_UNSAFE_CHARS = re.compile(r"[^A-Za-z0-9._-]+")


@dataclass(frozen=True)
class TaskRef:
    """Identity of one supervised task: which plane, which unit, which slot.

    ``day`` is the day index for the attack/telescope planes and the shard
    index for the scan plane — the second half of the task's derived PRNG
    key either way.
    """

    plane: str   # "attacks", "telescope" or "scan"
    unit: str    # honeypot name, protocol, "rsdos" …
    day: int     # day index, or shard index for the scan plane

    def key(self) -> str:
        """Canonical dotted identity, used in errors and journal files."""
        return f"{self.plane}.{self.unit}.{self.day}"

    def filename(self) -> str:
        """Filesystem-safe journal entry name."""
        return _UNSAFE_CHARS.sub("_", self.key()) + ".pkl"


class TaskJournal:
    """Crash-safe per-task completion journal (one pickle per task).

    Writes are atomic (``mkstemp`` + ``os.replace``) and best-effort —
    journal I/O faults degrade to a skipped write or a miss, never an
    error, exactly like the phase cache's disk layer; every skipped write
    is counted in :attr:`write_errors` and surfaced via ``StudyMetrics``.
    Entries are sealed in a checksummed :mod:`repro.core.integrity`
    envelope carrying the schema version, the task key and the writing
    config's ``fingerprint``, so *any* damaged or stale file — bit flip,
    truncation, older code, foreign config, colliding name — is detected
    on read, moved to ``quarantine/`` with a reasoned
    :class:`~repro.core.integrity.QuarantineRecord` (collected in
    :attr:`quarantined`), and treated as a miss: the task transparently
    recomputes and re-stores.

    ``resume=False`` (the default) only *writes*: the journal fills so a
    crash can be resumed later, but existing entries are ignored, keeping
    ordinary re-runs oblivious to stale state.  ``resume=True`` also
    *reads*: completed tasks load their journaled result instead of
    executing, which is what makes an interrupted campaign re-enterable
    with byte-identical output.
    """

    def __init__(
        self, directory: os.PathLike, *, resume: bool = False,
        fingerprint: str = "", quarantine_namespace: str = "",
    ) -> None:
        self.directory = os.path.expanduser(os.fspath(directory))
        self.resume = resume
        self.fingerprint = fingerprint
        #: Tenant namespace for quarantined entries — campaigns sharing a
        #: store quarantine into ``quarantine/<namespace>/`` so their
        #: serial-deduplicated stems cannot collide across tenants.
        self.quarantine_namespace = quarantine_namespace
        #: Entries served on load / written on store (for tests and logs).
        self.hits = 0
        self.stores = 0
        #: Best-effort writes that were skipped (satellite of the silent
        #: ``pass`` this counter replaced).
        self.write_errors = 0
        #: Entries moved aside by :meth:`load`, in detection order.
        self.quarantined: List[QuarantineRecord] = []
        self._lock = threading.Lock()

    def _path(self, ref: TaskRef) -> str:
        return os.path.join(self.directory, ref.filename())

    def _quarantine(self, path: str, ref: TaskRef, reason: str) -> None:
        record = quarantine_file(
            path, key=ref.key(), reason=reason, stage="journal.load",
            namespace=self.quarantine_namespace,
        )
        if record is not None:
            with self._lock:
                self.quarantined.append(record)

    def load(self, ref: TaskRef) -> Tuple[bool, object]:
        """``(True, result)`` when a valid entry exists, else ``(False, None)``."""
        if not self.resume:
            return False, None
        path = self._path(ref)
        try:
            faults.maybe_fail("cache.io", "journal.load", ref.key())
            with open(path, "rb") as handle:
                blob = handle.read()
        except (OSError, FaultError):
            return False, None  # absent entry or degraded I/O: plain miss
        blob = faults.maybe_corrupt(blob, "journal.load", ref.key())
        try:
            payload = unwrap_envelope(
                blob,
                schema=JOURNAL_SCHEMA_VERSION,
                kind="journal",
                key=ref.key(),
                fingerprint=self.fingerprint,
            )
        except EnvelopeError as error:
            self._quarantine(path, ref, error.reason)
            return False, None
        try:
            result = pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError, TypeError):
            self._quarantine(path, ref, "unpicklable")
            return False, None
        with self._lock:
            self.hits += 1
        return True, result

    def store(self, ref: TaskRef, result: object) -> None:
        """Persist one completed task's result atomically (best-effort)."""
        try:
            faults.maybe_fail("cache.io", "journal.store", ref.key())
            blob = wrap_envelope(
                pickle.dumps(result, pickle.HIGHEST_PROTOCOL),
                schema=JOURNAL_SCHEMA_VERSION,
                kind="journal",
                key=ref.key(),
                fingerprint=self.fingerprint,
            )
            blob = faults.maybe_corrupt(blob, "journal.store", ref.key())
            os.makedirs(self.directory, exist_ok=True)
            fd, temp = tempfile.mkstemp(
                dir=self.directory, suffix=".pkl.tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(temp, self._path(ref))
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
        except (OSError, FaultError, pickle.PicklingError, AttributeError,
                TypeError, RecursionError):
            with self._lock:
                self.write_errors += 1
        else:
            with self._lock:
                self.stores += 1

    def __len__(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self.directory)
                if name.endswith(".pkl")
            )
        except OSError:
            return 0


@dataclass
class TaskTiming:
    """Wall-time accounting for one (unit, day) generation task."""

    plane: str    # "attacks", "telescope" or "scan"
    unit: str     # honeypot name, protocol, or "rsdos"
    day: int
    seconds: float
    events: int   # attack events or flowtuple records produced

    @property
    def events_per_second(self) -> float:
        """Throughput of this task (0 when too fast to measure)."""
        return self.events / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form for the metrics payload."""
        return {
            "plane": self.plane,
            "unit": self.unit,
            "day": self.day,
            "seconds": round(self.seconds, 6),
            "events": self.events,
            "events_per_second": round(self.events_per_second, 1),
        }


@dataclass
class TaskStall:
    """One soft-deadline overrun: a warning row, not a failure."""

    plane: str
    unit: str
    day: int
    seconds: float   # observed task wall time
    limit: float     # the soft deadline it overran
    attempt: int

    def to_dict(self) -> dict:
        """JSON-ready form for the metrics payload."""
        return {
            "plane": self.plane,
            "unit": self.unit,
            "day": self.day,
            "seconds": round(self.seconds, 6),
            "limit": self.limit,
            "attempt": self.attempt,
        }


class TaskDeadline:
    """Per-task wall-time supervision: soft stall warnings, hard failures.

    The state machine per attempt: finish under the soft deadline →
    nothing; overrun the soft deadline → a :class:`TaskStall` row is
    recorded (surfaced in ``StudyMetrics`` / ``--metrics-json``) and the
    result is kept; overrun the hard deadline → the attempt's result is
    discarded and :class:`~repro.net.errors.TaskDeadlineError` (transient)
    is raised, flowing through the ordinary ``retries`` path — a stalled
    task usually completes normally when re-run, and supervised tasks are
    pure functions of their derived PRNG keys, so the retry is
    byte-identical to an undisturbed first attempt.

    Armed by the CLI's ``--task-deadline SOFT[:HARD]`` (seconds); the
    ``deadline`` fault site injects configurable delays to test it.
    """

    def __init__(
        self, soft: Optional[float] = None, hard: Optional[float] = None
    ) -> None:
        for name, value in (("soft", soft), ("hard", hard)):
            if value is not None and value <= 0.0:
                raise ConfigError(
                    f"{name} task deadline must be > 0 seconds, got {value}"
                )
        if soft is not None and hard is not None and hard < soft:
            raise ConfigError(
                f"hard task deadline ({hard}s) must be >= the soft "
                f"deadline ({soft}s)"
            )
        self.soft = soft
        self.hard = hard
        #: Soft-deadline overruns observed, in detection order.
        self.stalls: List[TaskStall] = []
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, spec: str) -> "TaskDeadline":
        """Parse ``SOFT`` or ``SOFT:HARD`` (seconds); raises ConfigError."""
        parts = spec.split(":")
        if len(parts) not in (1, 2) or not any(p.strip() for p in parts):
            raise ConfigError(
                f"bad task deadline {spec!r}; expected SOFT[:HARD] seconds"
            )
        try:
            values = [float(part) for part in parts]
        except ValueError:
            raise ConfigError(
                f"bad task deadline {spec!r}; expected SOFT[:HARD] seconds"
            ) from None
        return cls(values[0], values[1] if len(values) == 2 else None)

    def observe(self, ref: TaskRef, seconds: float, attempt: int) -> None:
        """Judge one finished attempt's wall time against the deadlines."""
        if self.hard is not None and seconds > self.hard:
            raise TaskDeadlineError(
                f"task {ref.key()} overran its hard deadline: "
                f"{seconds:.3f}s > {self.hard:g}s (attempt {attempt})",
                key=(ref.plane, ref.unit, ref.day),
                seconds=seconds,
                limit=self.hard,
            )
        if self.soft is not None and seconds > self.soft:
            with self._lock:
                self.stalls.append(TaskStall(
                    plane=ref.plane,
                    unit=ref.unit,
                    day=ref.day,
                    seconds=seconds,
                    limit=self.soft,
                    attempt=attempt,
                ))

    def absorb(self, stalls: Sequence[TaskStall]) -> None:
        """Fold stall rows observed elsewhere (a worker process) in."""
        if not stalls:
            return
        with self._lock:
            self.stalls.extend(stalls)


@contextmanager
def paused_gc() -> Iterator[None]:
    """Suspend cyclic garbage collection for the duration of a batch.

    Generation tasks allocate hundreds of thousands of immutable records
    that are all retained for the merge and form no reference cycles, so
    every generational collection triggered mid-batch rescans an ever
    larger live heap for nothing.  Pausing the collector while a batch
    drains roughly halves telescope emission time at benchmark scales;
    normal collection resumes (and catches up on its own schedule) on
    exit, even on error.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _run_supervised(
    thunk: Callable[[], _T],
    ref: TaskRef,
    retries: int,
    journal: Optional[TaskJournal],
    deadline: Optional[TaskDeadline] = None,
) -> _T:
    """One task under supervision: journal replay, retries, typed failure.

    The ``task`` injection site is checked once per attempt, keyed by the
    task's ref; the attempt number scopes every keyed fault verdict drawn
    *inside* the task too (see :func:`repro.core.faults.task_attempt`), so
    a retry re-runs the task under a fresh, independent failure schedule
    while the task's own PRNG draws stay byte-identical.  A ``deadline``
    judges each attempt's wall time after it completes; a hard overrun
    raises :class:`~repro.net.errors.TaskDeadlineError`, which is
    transient and lands in the same retry arm as injected faults.
    """
    if journal is not None:
        found, result = journal.load(ref)
        if found:
            return result  # type: ignore[return-value]
    attempt = 0
    while True:
        started = time.perf_counter()
        try:
            with faults.task_attempt(attempt):
                faults.maybe_fail("task", ref.plane, ref.unit, ref.day)
                faults.maybe_delay("deadline", ref.plane, ref.unit, ref.day)
                result = thunk()
                if deadline is not None:
                    deadline.observe(
                        ref, time.perf_counter() - started, attempt
                    )
            break
        except TaskFailure:
            raise  # already named (nested run_tasks); don't double-wrap
        except FatalFaultError as error:
            raise TaskFailure(ref, error, attempts=attempt + 1) from error
        except TransientFaultError as error:
            if attempt < retries:
                attempt += 1
                continue
            raise TaskFailure(ref, error, attempts=attempt + 1) from error
        except Exception as error:
            raise TaskFailure(ref, error, attempts=attempt + 1) from error
    if journal is not None:
        journal.store(ref, result)
    return result


@dataclass
class ChunkTiming:
    """Wall time of one executor chunk (a striped slice of a task batch)."""

    chunk: int
    tasks: int
    seconds: float
    #: Worker identity: a pid under the process executor, 0 otherwise.
    worker: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "chunk": self.chunk,
            "tasks": self.tasks,
            "seconds": round(self.seconds, 6),
            "worker": self.worker,
        }


@dataclass
class SupervisorEvent:
    """One pool-supervisor intervention: a pool rebuild or a downgrade.

    ``action`` is ``"pool-restart"`` (the pool was rebuilt and the
    unfinished tasks requeued) or ``"downgrade"`` (the supervisor stepped
    down the executor ladder); ``reason`` is the stable trigger token —
    ``"worker-crash"`` (``BrokenProcessPool``), ``"hang-timeout"`` (no
    chunk completed within the watchdog window), ``"restart-budget"``
    (the rebuild budget ran out) or ``"thread-pool-unavailable"`` (the
    thread rung itself could not start and the batch fell back to
    serial).  ``generation`` numbers the pool incarnation the event ended
    and ``requeued`` counts the tasks handed to the next incarnation (or
    down the ladder).
    """

    action: str
    reason: str
    generation: int
    requeued: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "action": self.action,
            "reason": self.reason,
            "generation": self.generation,
            "requeued": self.requeued,
        }


@dataclass
class ExecutorStats:
    """What actually ran a plane's task batches, and how fast.

    One instance accumulates across every :func:`run_tasks` call a plane
    makes (the scan campaign runs one batch per protocol); ``kind`` keeps
    the last resolved executor, which is uniform within a plane.
    """

    kind: str = "serial"
    workers: int = 1
    tasks: int = 0
    seconds: float = 0.0
    chunks: List[ChunkTiming] = field(default_factory=list)
    #: Pool-supervisor interventions, in occurrence order.
    supervisor: List[SupervisorEvent] = field(default_factory=list)

    @property
    def tasks_per_second(self) -> float:
        return self.tasks / self.seconds if self.seconds > 0 else 0.0

    @property
    def restarts(self) -> int:
        """Pool rebuilds the supervisor performed."""
        return sum(
            1 for event in self.supervisor if event.action == "pool-restart"
        )

    @property
    def downgrades(self) -> int:
        """Executor-ladder downgrades the supervisor performed."""
        return sum(
            1 for event in self.supervisor if event.action == "downgrade"
        )

    def record(self, kind: str, workers: int, tasks: int,
               seconds: float) -> None:
        self.kind = kind
        self.workers = max(self.workers, workers)
        self.tasks += tasks
        self.seconds += seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "workers": self.workers,
            "tasks": self.tasks,
            "seconds": round(self.seconds, 6),
            "tasks_per_second": round(self.tasks_per_second, 1),
            "chunks": [chunk.to_dict() for chunk in self.chunks],
            "supervisor": [event.to_dict() for event in self.supervisor],
        }


@dataclass(frozen=True)
class ProcessPlan:
    """Picklable recipe for running a task batch in worker processes.

    Thread-pool thunks close over live planes and cannot cross a process
    boundary; a process plan replaces them with data.  ``context`` is
    pickled ONCE per worker and handed to ``setup`` in the worker's
    initializer (world/config built once per worker, not per task);
    ``run(state, payload)`` then executes one task against the state
    ``setup`` returned.  ``run`` and ``setup`` must be module-level
    callables (pickled by reference); ``payloads`` line up with the
    batch's refs/thunks index for index.
    """

    run: Callable[[Any, Any], Any]
    payloads: Sequence[Any]
    context: Any = None
    setup: Optional[Callable[[Any], Any]] = None


#: Recognised ``--executor`` spellings.
EXECUTORS = ("thread", "process", "auto")

#: Pool rebuilds the supervisor performs before stepping down the
#: executor ladder (process → thread → serial).
DEFAULT_RESTART_BUDGET = 3

_default_restart_budget = DEFAULT_RESTART_BUDGET
#: No-progress watchdog window in seconds; ``None`` disarms the watchdog
#: (a hung worker then simply holds its chunk until it wakes).
_default_hang_timeout: Optional[float] = None


@contextmanager
def pool_supervision(
    *,
    hang_timeout: Optional[float] = None,
    restart_budget: Optional[int] = None,
) -> Iterator[None]:
    """Scope process-pool supervision defaults for nested ``run_tasks``.

    The measurement planes call :func:`run_tasks` without supervision
    arguments, so the chaos harness and the CLI arm the watchdog here:
    every batch inside the ``with`` body inherits ``hang_timeout`` (the
    no-progress window, seconds) and ``restart_budget`` (pool rebuilds
    before downgrading).  Omitted values keep the surrounding defaults.
    """
    global _default_hang_timeout, _default_restart_budget
    previous = (_default_hang_timeout, _default_restart_budget)
    if hang_timeout is not None:
        _default_hang_timeout = hang_timeout
    if restart_budget is not None:
        _default_restart_budget = max(0, restart_budget)
    try:
        yield
    finally:
        _default_hang_timeout, _default_restart_budget = previous


# Thread-local checkpoint hook: the orchestrator (or any long-lived
# driver) installs a callback here around a study run, and every
# ``run_tasks`` batch started on this thread calls it at task boundaries.
_checkpoint_local = threading.local()


@contextmanager
def task_checkpoint(callback: Optional[Callable[[], None]]) -> Iterator[None]:
    """Scope a cooperative task-boundary checkpoint for ``run_tasks``.

    ``callback`` is invoked with no arguments at every task boundary of
    every batch started inside the ``with`` body on this thread: before
    each supervised task on the serial and thread rungs, and in the
    parent as each chunk drains on the process rung (workers are
    sacrificial; control flow stays in the parent).  Returning normally
    continues the batch — that is the heartbeat path.  Raising stops the
    batch at the boundary: the exception propagates out of ``run_tasks``
    after the executor tears down (futures cancelled, pool workers
    terminated), so a cooperative pause or cancel leaks no workers.

    Raise a ``BaseException`` subclass (not ``Exception``) to interrupt:
    task supervision deliberately retries/wraps ``Exception`` into
    :class:`~repro.net.errors.TaskFailure`, and a degrade-mode study
    would swallow that — control flow must ride above supervision.

    ``run_tasks`` captures the callback once at entry on the calling
    thread and closes over it, so the hook survives the executor fan-out
    even though thread-locals do not propagate into pool threads.
    """
    previous = getattr(_checkpoint_local, "callback", None)
    _checkpoint_local.callback = callback
    try:
        yield
    finally:
        _checkpoint_local.callback = previous


def resolve_executor(
    executor: Optional[str],
    *,
    process_plan: Optional[ProcessPlan] = None,
    workers: int = 1,
) -> str:
    """Resolve an executor request to a concrete kind.

    ``auto`` picks the process pool when the batch ships a process plan,
    more than one worker is requested, and the box actually has more than
    one core to use — otherwise the thread pool.  Output bytes are
    identical either way; only the wall clock differs.
    """
    if executor is None or executor == "auto":
        if (process_plan is not None and workers > 1
                and (os.cpu_count() or 1) > 1):
            return "process"
        return "thread"
    if executor not in EXECUTORS:
        raise ConfigError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    return executor


#: Per-worker state built by a :class:`ProcessPlan`'s setup callable.
_worker_state: Any = None


def _process_initializer(setup, context, fault_plan) -> None:
    """Worker bootstrap: install the parent's fault plan, build state.

    Fault verdicts are pure functions of (plan seed, site, key, attempt)
    — see :mod:`repro.core.faults` — so installing the same plan here
    reproduces the parent's failure schedule exactly, whatever process
    the task lands on.
    """
    global _worker_state
    if fault_plan is not None:
        faults.install(fault_plan)
    _worker_state = setup(context) if setup is not None else context


def _process_chunk(run, items, retries, deadline_spec, generation=0):
    """Run one striped chunk inside a worker process.

    ``items`` is ``[(index, ref, payload), ...]``.  Supervision (task/
    deadline fault sites, retries) happens worker-side through the same
    :func:`_run_supervised` the thread path uses; journalling stays in
    the parent (the journal holds a lock and a directory handle).  Soft
    stalls are collected on a local deadline and returned for the parent
    to absorb.

    The ``worker.crash`` / ``worker.hang`` fault sites are checked here —
    and *only* here, so the thread and serial executors are immune and
    the supervisor's downgrade ladder always terminates.  Both verdicts
    fold ``generation`` (the pool incarnation) into the key: a task
    requeued after a pool rebuild draws a fresh, independent verdict,
    while its own PRNG draws stay byte-identical.  The checks run before
    the task does, so a killed worker has produced no partial effects.
    """
    deadline = (
        TaskDeadline(deadline_spec[0], deadline_spec[1])
        if deadline_spec is not None else None
    )
    started = time.perf_counter()
    results = []
    with paused_gc():
        for index, ref, payload in items:
            faults.maybe_crash(ref.plane, ref.unit, ref.day, generation)
            faults.maybe_delay(
                "worker.hang", ref.plane, ref.unit, ref.day, generation
            )
            thunk = functools.partial(run, _worker_state, payload)
            results.append(
                (index, _run_supervised(thunk, ref, retries, None, deadline))
            )
    seconds = time.perf_counter() - started
    stalls = list(deadline.stalls) if deadline is not None else []
    return results, stalls, seconds, os.getpid()


def _striped_chunks(indexes: Sequence[int], n_chunks: int) -> List[List[int]]:
    """Interleaved chunk assignment: chunk *i* takes every n_chunks-th task.

    Contiguous chunks serialize behind cost skew — a honeypot's whole
    expensive telnet month can land in one chunk.  Striping deals every
    chunk a cross-section of the batch instead; results are re-merged by
    task index, so the assignment is invisible in the output bytes.
    """
    return [list(indexes[i::n_chunks]) for i in range(n_chunks)]


def run_tasks(
    thunks: Sequence[Callable[[], _T]],
    workers: int,
    *,
    refs: Optional[Sequence[TaskRef]] = None,
    retries: int = 0,
    journal: Optional[TaskJournal] = None,
    deadline: Optional[TaskDeadline] = None,
    executor: Optional[str] = None,
    process_plan: Optional[ProcessPlan] = None,
    stats: Optional[ExecutorStats] = None,
    restart_budget: Optional[int] = None,
    hang_timeout: Optional[float] = None,
) -> List[_T]:
    """Run independent task thunks supervised, in submission order.

    ``workers <= 1`` executes inline (the serial oracle path); anything
    larger fans out on a thread pool, or — when ``executor`` resolves to
    ``"process"`` and the caller supplied a :class:`ProcessPlan` — on a
    supervised process pool that sidesteps the GIL entirely.  Either way
    the result list order is the submission order, never the completion
    order, so callers can merge without knowing how the work was
    scheduled.  Cyclic GC is paused while the batch drains (see
    :func:`paused_gc`).

    ``refs`` names each task (defaults to anonymous per-index refs);
    ``retries`` bounds transient-failure re-execution; ``journal`` makes
    completed tasks crash-safe and, with ``journal.resume``, replayable;
    ``deadline`` arms per-task wall-time supervision (soft stalls recorded
    on the deadline object, hard overruns retried as transient faults);
    ``stats`` accumulates executor kind, per-chunk timings and supervisor
    events for the metrics surface.  A failure surfaces as
    :class:`~repro.net.errors.TaskFailure` carrying the task's ref, after
    cancelling every not-yet-started future.

    ``restart_budget`` and ``hang_timeout`` tune the process-pool
    supervisor (defaults come from :func:`pool_supervision` scope or the
    module constants): a broken pool or a watchdog timeout rebuilds the
    pool and requeues the unfinished tasks — byte-identical, because the
    tasks are pure functions of their derived PRNG keys — and when the
    budget runs out the batch downgrades to the thread executor (where
    worker fault sites cannot fire), then to serial if threads cannot be
    spawned at all.
    """
    if refs is None:
        refs = [TaskRef("tasks", "task", index) for index in range(len(thunks))]
    elif len(refs) != len(thunks):
        raise ValueError(
            f"got {len(thunks)} thunks but {len(refs)} refs"
        )
    if (process_plan is not None
            and len(process_plan.payloads) != len(thunks)):
        raise ValueError(
            f"got {len(thunks)} thunks but "
            f"{len(process_plan.payloads)} process payloads"
        )
    retries = max(0, retries)
    kind = resolve_executor(executor, process_plan=process_plan,
                            workers=workers)
    if restart_budget is None:
        restart_budget = _default_restart_budget
    restart_budget = max(0, restart_budget)
    if hang_timeout is None:
        hang_timeout = _default_hang_timeout
    # Captured once on the calling thread: thread-locals do not propagate
    # into pool threads, so the closure carries the hook across fan-out.
    checkpoint = getattr(_checkpoint_local, "callback", None)

    def run_one(index: int) -> _T:
        if checkpoint is not None:
            checkpoint()
        return _run_supervised(
            thunks[index], refs[index], retries, journal, deadline
        )

    if workers <= 1 or len(thunks) <= 1:
        started = time.perf_counter()
        with paused_gc():
            results = [run_one(index) for index in range(len(thunks))]
        if stats is not None:
            stats.record("serial", 1, len(thunks),
                         time.perf_counter() - started)
        return results

    results: List[Optional[_T]] = [None] * len(thunks)
    if kind == "process" and process_plan is not None:
        leftover = _run_process_pool(
            process_plan, refs, workers, retries, journal, deadline,
            stats, results,
            restart_budget=restart_budget, hang_timeout=hang_timeout,
            checkpoint=checkpoint,
        )
        if leftover:
            # Restart budget exhausted: finish the unfinished tasks on
            # the thread rung.  Worker fault sites never fire outside a
            # process-pool worker, so this rung cannot crash the same
            # way — the ladder terminates.
            _run_thread_chunks(run_one, leftover, workers, results, stats)
        return results  # type: ignore[return-value]

    _run_thread_chunks(
        run_one, list(range(len(thunks))), workers, results, stats
    )
    return results  # type: ignore[return-value]


def _run_thread_chunks(
    run_one: Callable[[int], _T],
    indexes: Sequence[int],
    workers: int,
    results: List[Optional[_T]],
    stats: Optional[ExecutorStats],
) -> None:
    """The thread rung: run ``indexes`` striped on a thread pool.

    Fills ``results`` in place (the caller owns the full-batch list, so
    the same helper serves both a whole batch and a post-downgrade
    remainder).  If the pool itself cannot start — thread exhaustion, the
    genuine failure mode of this rung — the batch downgrades once more
    and runs inline, recorded as a supervisor event.
    """
    # Submit striped chunks, not individual tasks: a month shards into
    # hundreds of small (unit, day) tasks, and per-future queue traffic
    # would swamp them.  ``workers * 4`` chunks keeps the pool load-balanced
    # when task sizes are skewed (telnet days dwarf xmpp days) while the
    # per-chunk overhead stays negligible; the interleaved assignment keeps
    # one expensive unit's run of days from serializing a single chunk.
    def run_chunk(
        chunk_indexes: Sequence[int],
    ) -> Tuple[List[Tuple[int, _T]], float]:
        chunk_started = time.perf_counter()
        pairs = [(index, run_one(index)) for index in chunk_indexes]
        return pairs, time.perf_counter() - chunk_started

    n_chunks = min(len(indexes), workers * 4)
    chunks = _striped_chunks(indexes, n_chunks)

    try:
        pool = ThreadPoolExecutor(max_workers=workers)
    except (RuntimeError, OSError):
        # Cannot spawn threads: the last rung of the ladder runs inline.
        if stats is not None:
            stats.supervisor.append(SupervisorEvent(
                action="downgrade", reason="thread-pool-unavailable",
                generation=0, requeued=len(indexes),
            ))
        started = time.perf_counter()
        with paused_gc():
            for index in indexes:
                results[index] = run_one(index)
        if stats is not None:
            stats.record("serial", 1, len(indexes),
                         time.perf_counter() - started)
        return

    # The tasks are coarse, independent, pure-CPU units that share nothing
    # but the pool: the interpreter's default 5 ms switch interval just
    # thrashes caches between them.  Widen it while the pool drains so the
    # threaded path costs about what the inline path does even when the
    # box has fewer cores than workers.
    previous = sys.getswitchinterval()
    sys.setswitchinterval(0.05)
    started = time.perf_counter()
    try:
        with paused_gc(), pool:
            futures = [pool.submit(run_chunk, chunk) for chunk in chunks]
            try:
                for chunk_index, future in enumerate(futures):
                    pairs, chunk_seconds = future.result()
                    for index, result in pairs:
                        results[index] = result
                    if stats is not None:
                        stats.chunks.append(ChunkTiming(
                            chunk=chunk_index, tasks=len(pairs),
                            seconds=chunk_seconds,
                        ))
                if stats is not None:
                    stats.record("thread", workers, len(indexes),
                                 time.perf_counter() - started)
            except BaseException:
                # Don't let the remaining month run to completion behind
                # the error: unstarted chunks are cancelled; chunks already
                # on a worker finish their current task and stop at the
                # pool's shutdown.
                for future in futures:
                    future.cancel()
                raise
    finally:
        sys.setswitchinterval(previous)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Best-effort kill of a pool's worker processes (hang recovery).

    Reaches into the executor's process table — there is no public kill
    API — and terminates each worker; a pool already broken by worker
    death has reaped its processes and this is a no-op.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError, AttributeError):
            pass


def _run_pool_generation(
    process_plan: ProcessPlan,
    refs: Sequence[TaskRef],
    pending: Sequence[int],
    workers: int,
    retries: int,
    deadline_spec: Optional[Tuple[Optional[float], Optional[float]]],
    fault_plan: Any,
    journal: Optional[TaskJournal],
    deadline: Optional[TaskDeadline],
    stats: Optional[ExecutorStats],
    results: List[Any],
    generation: int,
    hang_timeout: Optional[float],
    chunk_counter: int,
    checkpoint: Optional[Callable[[], None]] = None,
) -> Tuple[set, Optional[str], int]:
    """Run one pool incarnation over ``pending``; report what survived.

    Returns ``(completed_indexes, failure, chunk_counter)`` where
    ``failure`` is ``None`` (every chunk drained), ``"worker-crash"``
    (the pool broke under abrupt worker death) or ``"hang-timeout"`` (no
    chunk completed within ``hang_timeout`` seconds — the no-progress
    watchdog).  Completed chunk results are committed to ``results`` and
    the journal as they drain, so a mid-generation failure loses only the
    genuinely unfinished tasks; everything committed stays committed.
    """
    payloads = process_plan.payloads
    n_chunks = min(len(pending), workers * 4)
    chunks = _striped_chunks(pending, n_chunks)
    items = [
        [(index, refs[index], payloads[index]) for index in chunk]
        for chunk in chunks
    ]
    completed: set = set()
    failure: Optional[str] = None
    error: Optional[BaseException] = None
    clean_exit = False
    pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_process_initializer,
        initargs=(process_plan.setup, process_plan.context, fault_plan),
    )

    def drain(done_futures):
        """Commit every successfully finished chunk in the wave."""
        nonlocal failure, error, chunk_counter
        for future in done_futures:
            try:
                chunk_results, stalls, seconds, pid = future.result()
            except CancelledError:
                # Salvage pass cancelled an unstarted chunk; it rides
                # above ``Exception`` on modern Pythons, so name it.
                continue
            except BrokenExecutor:
                failure = "worker-crash"
                continue
            except Exception as exc:
                # A real task failure (fatal fault, genuine bug) in this
                # chunk.  Hold the first one and keep draining: sibling
                # chunks that finished must still reach the journal, or
                # whether a resume finds any progress would depend on
                # chunk scheduling order.  Re-raised after the salvage
                # pass below.
                if error is None:
                    error = exc
                continue
            for index, result in chunk_results:
                results[index] = result
                completed.add(index)
                if journal is not None:
                    journal.store(refs[index], result)
            if deadline is not None:
                deadline.absorb(stalls)
            if stats is not None:
                stats.chunks.append(ChunkTiming(
                    chunk=chunk_counter, tasks=len(chunk_results),
                    seconds=seconds, worker=pid,
                ))
            chunk_counter += 1

    try:
        try:
            not_done = {
                pool.submit(_process_chunk, process_plan.run, chunk_items,
                            retries, deadline_spec, generation)
                for chunk_items in items
            }
        except BrokenExecutor:
            # A worker died before submission finished (crash verdict in
            # the initializer window); nothing was committed.
            clean_exit = True
            return completed, "worker-crash", chunk_counter
        while not_done and failure is None and error is None:
            if checkpoint is not None:
                # Task-boundary hook, called in the parent between chunk
                # waves: raising lands in the ``finally`` below, which
                # terminates the workers — no orphaned pool on a pause.
                checkpoint()
            done, not_done = futures_wait(not_done, timeout=hang_timeout)
            if not done:
                # No chunk finished inside the watchdog window: a worker
                # is wedged (the ``worker.hang`` site, a livelock, a
                # blocked syscall).  Tear the incarnation down.
                failure = "hang-timeout"
                break
            drain(done)
        if error is not None:
            # Salvage: unstarted chunks are cancelled, but chunks already
            # running in healthy workers finish on their own — wait
            # (bounded by the hang watchdog) and commit them, so a resume
            # replays every task that actually completed.
            for future in not_done:
                future.cancel()
            while not_done:
                done, not_done = futures_wait(not_done, timeout=hang_timeout)
                if not done:
                    break
                drain(done)
            raise error
        clean_exit = True
        return completed, failure, chunk_counter
    finally:
        if failure is None and clean_exit:
            pool.shutdown(wait=True)
        else:
            # A broken, hung, or exception-interrupted incarnation: kill
            # the workers (a hung worker would otherwise hold shutdown
            # hostage for the length of its sleep) and abandon the queue.
            _terminate_pool(pool)
            pool.shutdown(wait=False, cancel_futures=True)


def _run_process_pool(
    process_plan: ProcessPlan,
    refs: Sequence[TaskRef],
    workers: int,
    retries: int,
    journal: Optional[TaskJournal],
    deadline: Optional[TaskDeadline],
    stats: Optional[ExecutorStats],
    results: List[Any],
    *,
    restart_budget: int,
    hang_timeout: Optional[float],
    checkpoint: Optional[Callable[[], None]] = None,
) -> List[int]:
    """The multi-core arm of :func:`run_tasks`, under pool supervision.

    The parent keeps everything that holds locks or file handles: journal
    replay happens before submission (resumed tasks never reach a worker)
    and journal stores happen as chunk results drain back.  Workers get
    the picklable plan — context once via the pool initializer, then
    striped ``(index, ref, payload)`` chunks — and run the same
    supervision loop the thread path does, with identical keyed fault and
    deadline verdicts because those are pure in (seed, key, attempt).

    The supervision loop around the incarnations: a broken pool (abrupt
    worker death) or a watchdog timeout requeues exactly the tasks that
    never drained back and rebuilds the pool under the next generation
    number — safe, because tasks are pure functions of their derived PRNG
    keys, so re-execution is byte-identical.  Each rebuild spends one
    unit of ``restart_budget``; when the budget is gone the remaining
    task indexes are returned for :func:`run_tasks` to finish on the
    thread rung (an empty return means the batch completed here).
    Ordinary task failures (:class:`~repro.net.errors.TaskFailure`)
    propagate — they are the task's verdict, not the pool's.
    """
    payloads = process_plan.payloads
    total = len(payloads)
    pending: List[int] = []
    for index in range(total):
        if journal is not None:
            found, result = journal.load(refs[index])
            if found:
                results[index] = result
                continue
        pending.append(index)
    if not pending:
        if stats is not None:
            stats.record("process", workers, total, 0.0)
        return []

    injector = faults.active()
    fault_plan = injector.plan if injector is not None else None
    deadline_spec = (
        (deadline.soft, deadline.hard) if deadline is not None else None
    )
    started = time.perf_counter()
    generation = 0
    restarts = 0
    chunk_counter = 0
    while pending:
        completed, failure, chunk_counter = _run_pool_generation(
            process_plan, refs, pending, workers, retries, deadline_spec,
            fault_plan, journal, deadline, stats, results, generation,
            hang_timeout, chunk_counter, checkpoint,
        )
        pending = [index for index in pending if index not in completed]
        if failure is None or not pending:
            pending = []
            break
        if restarts >= restart_budget:
            if stats is not None:
                stats.supervisor.append(SupervisorEvent(
                    action="downgrade", reason="restart-budget",
                    generation=generation, requeued=len(pending),
                ))
            break
        restarts += 1
        if stats is not None:
            stats.supervisor.append(SupervisorEvent(
                action="pool-restart", reason=failure,
                generation=generation, requeued=len(pending),
            ))
        generation += 1
    if stats is not None:
        stats.record("process", workers, total - len(pending),
                     time.perf_counter() - started)
    return pending
