"""Supervised keyed-task execution for the sharded measurement planes.

The attack month shards into per-(honeypot, day) tasks, the telescope
month into per-(protocol, day) tasks, and the scan campaign into
per-(protocol, shard) tasks; every task draws from its own
:meth:`~repro.net.prng.RandomStream.derive` child stream, so its output is
a pure function of the task key and the tasks can run on a thread pool in
any order.  :func:`run_tasks` is the executor all three planes share:
results come back in submission order regardless of worker count, which is
the first half of the byte-identical merge guarantee (the second half is
the canonical sort each plane applies to the merged output).

Beyond scheduling, ``run_tasks`` is a *supervisor*:

* every task carries a :class:`TaskRef` ``(plane, unit, day/shard)``;
  a raised exception is wrapped in :class:`~repro.net.errors.TaskFailure`
  naming the task, and outstanding futures are cancelled instead of
  running to completion behind the error;
* transient failures (:class:`~repro.net.errors.TransientFaultError`, the
  stand-in for packet loss and rate-limited peers) are retried up to
  ``retries`` times.  Tasks are pure functions of derived PRNG keys, so a
  retry is byte-identical to an undisturbed first attempt — the retried
  campaign's output cannot differ;
* a :class:`TaskJournal` (one atomic, envelope-sealed pickle per completed
  task, under the cache directory) makes campaigns crash-safe: a resumed
  run loads the journaled results of completed tasks and re-executes only
  the rest, producing byte-identical output to an uninterrupted run.
  Every entry is a checksummed :mod:`repro.core.integrity` envelope, so a
  damaged or stale entry is *detected* on read, quarantined (never
  deleted, never re-read), and transparently recomputed — self-healing
  resume;
* a :class:`TaskDeadline` supervises task wall time: overrunning the soft
  deadline records a :class:`TaskStall` warning row (surfaced in
  ``StudyMetrics``), overrunning the hard deadline raises
  :class:`~repro.net.errors.TaskDeadlineError` — a transient fault, so it
  flows through the same ``retries`` path and a retried task is still
  byte-identical (tasks are pure functions of their derived PRNG keys).

:class:`TaskTiming` is the per-task metrics row surfaced in
``StudyMetrics`` (and ``--metrics-json``) so the scaling benchmark can
show where the wall time went — the attack-plane sibling of
:class:`~repro.scanner.shard.ShardTiming`.
"""

from __future__ import annotations

import functools
import gc
import os
import pickle
import re
import sys
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.core import faults
from repro.core.integrity import (
    QuarantineRecord,
    quarantine_file,
    unwrap_envelope,
    wrap_envelope,
)
from repro.net.errors import (
    ConfigError,
    EnvelopeError,
    FatalFaultError,
    FaultError,
    TaskDeadlineError,
    TaskFailure,
    TransientFaultError,
)

__all__ = [
    "TaskRef",
    "TaskJournal",
    "TaskTiming",
    "TaskStall",
    "TaskDeadline",
    "ChunkTiming",
    "ExecutorStats",
    "ProcessPlan",
    "EXECUTORS",
    "resolve_executor",
    "paused_gc",
    "run_tasks",
]

_T = TypeVar("_T")

#: Journal entry layout version; bumped entries are treated as misses.
#: Version 2: raw pickle payload sealed in a checksummed
#: :mod:`repro.core.integrity` envelope (schema/kind/key/fingerprint).
JOURNAL_SCHEMA_VERSION = 2

_UNSAFE_CHARS = re.compile(r"[^A-Za-z0-9._-]+")


@dataclass(frozen=True)
class TaskRef:
    """Identity of one supervised task: which plane, which unit, which slot.

    ``day`` is the day index for the attack/telescope planes and the shard
    index for the scan plane — the second half of the task's derived PRNG
    key either way.
    """

    plane: str   # "attacks", "telescope" or "scan"
    unit: str    # honeypot name, protocol, "rsdos" …
    day: int     # day index, or shard index for the scan plane

    def key(self) -> str:
        """Canonical dotted identity, used in errors and journal files."""
        return f"{self.plane}.{self.unit}.{self.day}"

    def filename(self) -> str:
        """Filesystem-safe journal entry name."""
        return _UNSAFE_CHARS.sub("_", self.key()) + ".pkl"


class TaskJournal:
    """Crash-safe per-task completion journal (one pickle per task).

    Writes are atomic (``mkstemp`` + ``os.replace``) and best-effort —
    journal I/O faults degrade to a skipped write or a miss, never an
    error, exactly like the phase cache's disk layer; every skipped write
    is counted in :attr:`write_errors` and surfaced via ``StudyMetrics``.
    Entries are sealed in a checksummed :mod:`repro.core.integrity`
    envelope carrying the schema version, the task key and the writing
    config's ``fingerprint``, so *any* damaged or stale file — bit flip,
    truncation, older code, foreign config, colliding name — is detected
    on read, moved to ``quarantine/`` with a reasoned
    :class:`~repro.core.integrity.QuarantineRecord` (collected in
    :attr:`quarantined`), and treated as a miss: the task transparently
    recomputes and re-stores.

    ``resume=False`` (the default) only *writes*: the journal fills so a
    crash can be resumed later, but existing entries are ignored, keeping
    ordinary re-runs oblivious to stale state.  ``resume=True`` also
    *reads*: completed tasks load their journaled result instead of
    executing, which is what makes an interrupted campaign re-enterable
    with byte-identical output.
    """

    def __init__(
        self, directory: os.PathLike, *, resume: bool = False,
        fingerprint: str = "",
    ) -> None:
        self.directory = os.path.expanduser(os.fspath(directory))
        self.resume = resume
        self.fingerprint = fingerprint
        #: Entries served on load / written on store (for tests and logs).
        self.hits = 0
        self.stores = 0
        #: Best-effort writes that were skipped (satellite of the silent
        #: ``pass`` this counter replaced).
        self.write_errors = 0
        #: Entries moved aside by :meth:`load`, in detection order.
        self.quarantined: List[QuarantineRecord] = []
        self._lock = threading.Lock()

    def _path(self, ref: TaskRef) -> str:
        return os.path.join(self.directory, ref.filename())

    def _quarantine(self, path: str, ref: TaskRef, reason: str) -> None:
        record = quarantine_file(
            path, key=ref.key(), reason=reason, stage="journal.load"
        )
        if record is not None:
            with self._lock:
                self.quarantined.append(record)

    def load(self, ref: TaskRef) -> Tuple[bool, object]:
        """``(True, result)`` when a valid entry exists, else ``(False, None)``."""
        if not self.resume:
            return False, None
        path = self._path(ref)
        try:
            faults.maybe_fail("cache.io", "journal.load", ref.key())
            with open(path, "rb") as handle:
                blob = handle.read()
        except (OSError, FaultError):
            return False, None  # absent entry or degraded I/O: plain miss
        blob = faults.maybe_corrupt(blob, "journal.load", ref.key())
        try:
            payload = unwrap_envelope(
                blob,
                schema=JOURNAL_SCHEMA_VERSION,
                kind="journal",
                key=ref.key(),
                fingerprint=self.fingerprint,
            )
        except EnvelopeError as error:
            self._quarantine(path, ref, error.reason)
            return False, None
        try:
            result = pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError, TypeError):
            self._quarantine(path, ref, "unpicklable")
            return False, None
        with self._lock:
            self.hits += 1
        return True, result

    def store(self, ref: TaskRef, result: object) -> None:
        """Persist one completed task's result atomically (best-effort)."""
        try:
            faults.maybe_fail("cache.io", "journal.store", ref.key())
            blob = wrap_envelope(
                pickle.dumps(result, pickle.HIGHEST_PROTOCOL),
                schema=JOURNAL_SCHEMA_VERSION,
                kind="journal",
                key=ref.key(),
                fingerprint=self.fingerprint,
            )
            blob = faults.maybe_corrupt(blob, "journal.store", ref.key())
            os.makedirs(self.directory, exist_ok=True)
            fd, temp = tempfile.mkstemp(
                dir=self.directory, suffix=".pkl.tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(temp, self._path(ref))
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
        except (OSError, FaultError, pickle.PicklingError, AttributeError,
                TypeError, RecursionError):
            with self._lock:
                self.write_errors += 1
        else:
            with self._lock:
                self.stores += 1

    def __len__(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self.directory)
                if name.endswith(".pkl")
            )
        except OSError:
            return 0


@dataclass
class TaskTiming:
    """Wall-time accounting for one (unit, day) generation task."""

    plane: str    # "attacks", "telescope" or "scan"
    unit: str     # honeypot name, protocol, or "rsdos"
    day: int
    seconds: float
    events: int   # attack events or flowtuple records produced

    @property
    def events_per_second(self) -> float:
        """Throughput of this task (0 when too fast to measure)."""
        return self.events / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form for the metrics payload."""
        return {
            "plane": self.plane,
            "unit": self.unit,
            "day": self.day,
            "seconds": round(self.seconds, 6),
            "events": self.events,
            "events_per_second": round(self.events_per_second, 1),
        }


@dataclass
class TaskStall:
    """One soft-deadline overrun: a warning row, not a failure."""

    plane: str
    unit: str
    day: int
    seconds: float   # observed task wall time
    limit: float     # the soft deadline it overran
    attempt: int

    def to_dict(self) -> dict:
        """JSON-ready form for the metrics payload."""
        return {
            "plane": self.plane,
            "unit": self.unit,
            "day": self.day,
            "seconds": round(self.seconds, 6),
            "limit": self.limit,
            "attempt": self.attempt,
        }


class TaskDeadline:
    """Per-task wall-time supervision: soft stall warnings, hard failures.

    The state machine per attempt: finish under the soft deadline →
    nothing; overrun the soft deadline → a :class:`TaskStall` row is
    recorded (surfaced in ``StudyMetrics`` / ``--metrics-json``) and the
    result is kept; overrun the hard deadline → the attempt's result is
    discarded and :class:`~repro.net.errors.TaskDeadlineError` (transient)
    is raised, flowing through the ordinary ``retries`` path — a stalled
    task usually completes normally when re-run, and supervised tasks are
    pure functions of their derived PRNG keys, so the retry is
    byte-identical to an undisturbed first attempt.

    Armed by the CLI's ``--task-deadline SOFT[:HARD]`` (seconds); the
    ``deadline`` fault site injects configurable delays to test it.
    """

    def __init__(
        self, soft: Optional[float] = None, hard: Optional[float] = None
    ) -> None:
        for name, value in (("soft", soft), ("hard", hard)):
            if value is not None and value <= 0.0:
                raise ConfigError(
                    f"{name} task deadline must be > 0 seconds, got {value}"
                )
        if soft is not None and hard is not None and hard < soft:
            raise ConfigError(
                f"hard task deadline ({hard}s) must be >= the soft "
                f"deadline ({soft}s)"
            )
        self.soft = soft
        self.hard = hard
        #: Soft-deadline overruns observed, in detection order.
        self.stalls: List[TaskStall] = []
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, spec: str) -> "TaskDeadline":
        """Parse ``SOFT`` or ``SOFT:HARD`` (seconds); raises ConfigError."""
        parts = spec.split(":")
        if len(parts) not in (1, 2) or not any(p.strip() for p in parts):
            raise ConfigError(
                f"bad task deadline {spec!r}; expected SOFT[:HARD] seconds"
            )
        try:
            values = [float(part) for part in parts]
        except ValueError:
            raise ConfigError(
                f"bad task deadline {spec!r}; expected SOFT[:HARD] seconds"
            ) from None
        return cls(values[0], values[1] if len(values) == 2 else None)

    def observe(self, ref: TaskRef, seconds: float, attempt: int) -> None:
        """Judge one finished attempt's wall time against the deadlines."""
        if self.hard is not None and seconds > self.hard:
            raise TaskDeadlineError(
                f"task {ref.key()} overran its hard deadline: "
                f"{seconds:.3f}s > {self.hard:g}s (attempt {attempt})",
                key=(ref.plane, ref.unit, ref.day),
                seconds=seconds,
                limit=self.hard,
            )
        if self.soft is not None and seconds > self.soft:
            with self._lock:
                self.stalls.append(TaskStall(
                    plane=ref.plane,
                    unit=ref.unit,
                    day=ref.day,
                    seconds=seconds,
                    limit=self.soft,
                    attempt=attempt,
                ))

    def absorb(self, stalls: Sequence[TaskStall]) -> None:
        """Fold stall rows observed elsewhere (a worker process) in."""
        if not stalls:
            return
        with self._lock:
            self.stalls.extend(stalls)


@contextmanager
def paused_gc() -> Iterator[None]:
    """Suspend cyclic garbage collection for the duration of a batch.

    Generation tasks allocate hundreds of thousands of immutable records
    that are all retained for the merge and form no reference cycles, so
    every generational collection triggered mid-batch rescans an ever
    larger live heap for nothing.  Pausing the collector while a batch
    drains roughly halves telescope emission time at benchmark scales;
    normal collection resumes (and catches up on its own schedule) on
    exit, even on error.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _run_supervised(
    thunk: Callable[[], _T],
    ref: TaskRef,
    retries: int,
    journal: Optional[TaskJournal],
    deadline: Optional[TaskDeadline] = None,
) -> _T:
    """One task under supervision: journal replay, retries, typed failure.

    The ``task`` injection site is checked once per attempt, keyed by the
    task's ref; the attempt number scopes every keyed fault verdict drawn
    *inside* the task too (see :func:`repro.core.faults.task_attempt`), so
    a retry re-runs the task under a fresh, independent failure schedule
    while the task's own PRNG draws stay byte-identical.  A ``deadline``
    judges each attempt's wall time after it completes; a hard overrun
    raises :class:`~repro.net.errors.TaskDeadlineError`, which is
    transient and lands in the same retry arm as injected faults.
    """
    if journal is not None:
        found, result = journal.load(ref)
        if found:
            return result  # type: ignore[return-value]
    attempt = 0
    while True:
        started = time.perf_counter()
        try:
            with faults.task_attempt(attempt):
                faults.maybe_fail("task", ref.plane, ref.unit, ref.day)
                faults.maybe_delay("deadline", ref.plane, ref.unit, ref.day)
                result = thunk()
                if deadline is not None:
                    deadline.observe(
                        ref, time.perf_counter() - started, attempt
                    )
            break
        except TaskFailure:
            raise  # already named (nested run_tasks); don't double-wrap
        except FatalFaultError as error:
            raise TaskFailure(ref, error, attempts=attempt + 1) from error
        except TransientFaultError as error:
            if attempt < retries:
                attempt += 1
                continue
            raise TaskFailure(ref, error, attempts=attempt + 1) from error
        except Exception as error:
            raise TaskFailure(ref, error, attempts=attempt + 1) from error
    if journal is not None:
        journal.store(ref, result)
    return result


@dataclass
class ChunkTiming:
    """Wall time of one executor chunk (a striped slice of a task batch)."""

    chunk: int
    tasks: int
    seconds: float
    #: Worker identity: a pid under the process executor, 0 otherwise.
    worker: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "chunk": self.chunk,
            "tasks": self.tasks,
            "seconds": round(self.seconds, 6),
            "worker": self.worker,
        }


@dataclass
class ExecutorStats:
    """What actually ran a plane's task batches, and how fast.

    One instance accumulates across every :func:`run_tasks` call a plane
    makes (the scan campaign runs one batch per protocol); ``kind`` keeps
    the last resolved executor, which is uniform within a plane.
    """

    kind: str = "serial"
    workers: int = 1
    tasks: int = 0
    seconds: float = 0.0
    chunks: List[ChunkTiming] = field(default_factory=list)

    @property
    def tasks_per_second(self) -> float:
        return self.tasks / self.seconds if self.seconds > 0 else 0.0

    def record(self, kind: str, workers: int, tasks: int,
               seconds: float) -> None:
        self.kind = kind
        self.workers = max(self.workers, workers)
        self.tasks += tasks
        self.seconds += seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "workers": self.workers,
            "tasks": self.tasks,
            "seconds": round(self.seconds, 6),
            "tasks_per_second": round(self.tasks_per_second, 1),
            "chunks": [chunk.to_dict() for chunk in self.chunks],
        }


@dataclass(frozen=True)
class ProcessPlan:
    """Picklable recipe for running a task batch in worker processes.

    Thread-pool thunks close over live planes and cannot cross a process
    boundary; a process plan replaces them with data.  ``context`` is
    pickled ONCE per worker and handed to ``setup`` in the worker's
    initializer (world/config built once per worker, not per task);
    ``run(state, payload)`` then executes one task against the state
    ``setup`` returned.  ``run`` and ``setup`` must be module-level
    callables (pickled by reference); ``payloads`` line up with the
    batch's refs/thunks index for index.
    """

    run: Callable[[Any, Any], Any]
    payloads: Sequence[Any]
    context: Any = None
    setup: Optional[Callable[[Any], Any]] = None


#: Recognised ``--executor`` spellings.
EXECUTORS = ("thread", "process", "auto")


def resolve_executor(
    executor: Optional[str],
    *,
    process_plan: Optional[ProcessPlan] = None,
    workers: int = 1,
) -> str:
    """Resolve an executor request to a concrete kind.

    ``auto`` picks the process pool when the batch ships a process plan,
    more than one worker is requested, and the box actually has more than
    one core to use — otherwise the thread pool.  Output bytes are
    identical either way; only the wall clock differs.
    """
    if executor is None or executor == "auto":
        if (process_plan is not None and workers > 1
                and (os.cpu_count() or 1) > 1):
            return "process"
        return "thread"
    if executor not in EXECUTORS:
        raise ConfigError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    return executor


#: Per-worker state built by a :class:`ProcessPlan`'s setup callable.
_worker_state: Any = None


def _process_initializer(setup, context, fault_plan) -> None:
    """Worker bootstrap: install the parent's fault plan, build state.

    Fault verdicts are pure functions of (plan seed, site, key, attempt)
    — see :mod:`repro.core.faults` — so installing the same plan here
    reproduces the parent's failure schedule exactly, whatever process
    the task lands on.
    """
    global _worker_state
    if fault_plan is not None:
        faults.install(fault_plan)
    _worker_state = setup(context) if setup is not None else context


def _process_chunk(run, items, retries, deadline_spec):
    """Run one striped chunk inside a worker process.

    ``items`` is ``[(index, ref, payload), ...]``.  Supervision (task/
    deadline fault sites, retries) happens worker-side through the same
    :func:`_run_supervised` the thread path uses; journalling stays in
    the parent (the journal holds a lock and a directory handle).  Soft
    stalls are collected on a local deadline and returned for the parent
    to absorb.
    """
    deadline = (
        TaskDeadline(deadline_spec[0], deadline_spec[1])
        if deadline_spec is not None else None
    )
    started = time.perf_counter()
    results = []
    with paused_gc():
        for index, ref, payload in items:
            thunk = functools.partial(run, _worker_state, payload)
            results.append(
                (index, _run_supervised(thunk, ref, retries, None, deadline))
            )
    seconds = time.perf_counter() - started
    stalls = list(deadline.stalls) if deadline is not None else []
    return results, stalls, seconds, os.getpid()


def _striped_chunks(indexes: Sequence[int], n_chunks: int) -> List[List[int]]:
    """Interleaved chunk assignment: chunk *i* takes every n_chunks-th task.

    Contiguous chunks serialize behind cost skew — a honeypot's whole
    expensive telnet month can land in one chunk.  Striping deals every
    chunk a cross-section of the batch instead; results are re-merged by
    task index, so the assignment is invisible in the output bytes.
    """
    return [list(indexes[i::n_chunks]) for i in range(n_chunks)]


def run_tasks(
    thunks: Sequence[Callable[[], _T]],
    workers: int,
    *,
    refs: Optional[Sequence[TaskRef]] = None,
    retries: int = 0,
    journal: Optional[TaskJournal] = None,
    deadline: Optional[TaskDeadline] = None,
    executor: Optional[str] = None,
    process_plan: Optional[ProcessPlan] = None,
    stats: Optional[ExecutorStats] = None,
) -> List[_T]:
    """Run independent task thunks supervised, in submission order.

    ``workers <= 1`` executes inline (the serial oracle path); anything
    larger fans out on a thread pool, or — when ``executor`` resolves to
    ``"process"`` and the caller supplied a :class:`ProcessPlan` — on a
    process pool that sidesteps the GIL entirely.  Either way the result
    list order is the submission order, never the completion order, so
    callers can merge without knowing how the work was scheduled.  Cyclic
    GC is paused while the batch drains (see :func:`paused_gc`).

    ``refs`` names each task (defaults to anonymous per-index refs);
    ``retries`` bounds transient-failure re-execution; ``journal`` makes
    completed tasks crash-safe and, with ``journal.resume``, replayable;
    ``deadline`` arms per-task wall-time supervision (soft stalls recorded
    on the deadline object, hard overruns retried as transient faults);
    ``stats`` accumulates executor kind and per-chunk timings for the
    metrics surface.  A failure surfaces as
    :class:`~repro.net.errors.TaskFailure` carrying the task's ref, after
    cancelling every not-yet-started future.
    """
    if refs is None:
        refs = [TaskRef("tasks", "task", index) for index in range(len(thunks))]
    elif len(refs) != len(thunks):
        raise ValueError(
            f"got {len(thunks)} thunks but {len(refs)} refs"
        )
    if (process_plan is not None
            and len(process_plan.payloads) != len(thunks)):
        raise ValueError(
            f"got {len(thunks)} thunks but "
            f"{len(process_plan.payloads)} process payloads"
        )
    retries = max(0, retries)
    kind = resolve_executor(executor, process_plan=process_plan,
                            workers=workers)

    def run_one(index: int) -> _T:
        return _run_supervised(
            thunks[index], refs[index], retries, journal, deadline
        )

    if workers <= 1 or len(thunks) <= 1:
        started = time.perf_counter()
        with paused_gc():
            results = [run_one(index) for index in range(len(thunks))]
        if stats is not None:
            stats.record("serial", 1, len(thunks),
                         time.perf_counter() - started)
        return results

    if kind == "process" and process_plan is not None:
        return _run_process_pool(
            process_plan, refs, workers, retries, journal, deadline, stats
        )

    # Submit striped chunks, not individual tasks: a month shards into
    # hundreds of small (unit, day) tasks, and per-future queue traffic
    # would swamp them.  ``workers * 4`` chunks keeps the pool load-balanced
    # when task sizes are skewed (telnet days dwarf xmpp days) while the
    # per-chunk overhead stays negligible; the interleaved assignment keeps
    # one expensive unit's run of days from serializing a single chunk.
    def run_chunk(
        indexes: Sequence[int],
    ) -> Tuple[List[Tuple[int, _T]], float]:
        chunk_started = time.perf_counter()
        pairs = [(index, run_one(index)) for index in indexes]
        return pairs, time.perf_counter() - chunk_started

    n_chunks = min(len(thunks), workers * 4)
    chunks = _striped_chunks(range(len(thunks)), n_chunks)

    # The tasks are coarse, independent, pure-CPU units that share nothing
    # but the pool: the interpreter's default 5 ms switch interval just
    # thrashes caches between them.  Widen it while the pool drains so the
    # threaded path costs about what the inline path does even when the
    # box has fewer cores than workers.
    previous = sys.getswitchinterval()
    sys.setswitchinterval(0.05)
    started = time.perf_counter()
    try:
        with paused_gc(), ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_chunk, chunk) for chunk in chunks]
            results: List[Optional[_T]] = [None] * len(thunks)
            try:
                for chunk_index, future in enumerate(futures):
                    pairs, chunk_seconds = future.result()
                    for index, result in pairs:
                        results[index] = result
                    if stats is not None:
                        stats.chunks.append(ChunkTiming(
                            chunk=chunk_index, tasks=len(pairs),
                            seconds=chunk_seconds,
                        ))
                if stats is not None:
                    stats.record("thread", workers, len(thunks),
                                 time.perf_counter() - started)
                return results  # type: ignore[return-value]
            except BaseException:
                # Don't let the remaining month run to completion behind
                # the error: unstarted chunks are cancelled; chunks already
                # on a worker finish their current task and stop at the
                # pool's shutdown.
                for future in futures:
                    future.cancel()
                raise
    finally:
        sys.setswitchinterval(previous)


def _run_process_pool(
    process_plan: ProcessPlan,
    refs: Sequence[TaskRef],
    workers: int,
    retries: int,
    journal: Optional[TaskJournal],
    deadline: Optional[TaskDeadline],
    stats: Optional[ExecutorStats],
) -> List[Any]:
    """The multi-core arm of :func:`run_tasks`.

    The parent keeps everything that holds locks or file handles: journal
    replay happens before submission (resumed tasks never reach a worker)
    and journal stores happen as chunk results drain back.  Workers get
    the picklable plan — context once via the pool initializer, then
    striped ``(index, ref, payload)`` chunks — and run the same
    supervision loop the thread path does, with identical keyed fault and
    deadline verdicts because those are pure in (seed, key, attempt).
    """
    payloads = process_plan.payloads
    total = len(payloads)
    results: List[Any] = [None] * total
    pending: List[int] = []
    for index in range(total):
        if journal is not None:
            found, result = journal.load(refs[index])
            if found:
                results[index] = result
                continue
        pending.append(index)
    if not pending:
        if stats is not None:
            stats.record("process", workers, total, 0.0)
        return results

    injector = faults.active()
    fault_plan = injector.plan if injector is not None else None
    deadline_spec = (
        (deadline.soft, deadline.hard) if deadline is not None else None
    )
    n_chunks = min(len(pending), workers * 4)
    chunks = _striped_chunks(pending, n_chunks)
    items = [
        [(index, refs[index], payloads[index]) for index in chunk]
        for chunk in chunks
    ]
    started = time.perf_counter()
    pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_process_initializer,
        initargs=(process_plan.setup, process_plan.context, fault_plan),
    )
    with pool:
        futures = [
            pool.submit(_process_chunk, process_plan.run, chunk_items,
                        retries, deadline_spec)
            for chunk_items in items
        ]
        try:
            for chunk_index, future in enumerate(futures):
                chunk_results, stalls, seconds, pid = future.result()
                for index, result in chunk_results:
                    results[index] = result
                    if journal is not None:
                        journal.store(refs[index], result)
                if deadline is not None:
                    deadline.absorb(stalls)
                if stats is not None:
                    stats.chunks.append(ChunkTiming(
                        chunk=chunk_index, tasks=len(chunk_results),
                        seconds=seconds, worker=pid,
                    ))
        except BaseException:
            for future in futures:
                future.cancel()
            raise
    if stats is not None:
        stats.record("process", workers, total,
                     time.perf_counter() - started)
    return results
