"""Declarative phase-DAG execution engine for the study pipeline.

The paper's methodology is an eight-phase measurement campaign; the engine
models it as a dependency graph over named *artifacts* (``population``,
``zmap_db``, ``merged_db``, ``schedule``, ``telescope`` …) instead of a
hard-coded call sequence:

* each :class:`PhaseSpec` declares the artifacts it *requires* and
  *provides*; asking the engine to :meth:`~StudyEngine.ensure` any artifact
  topologically resolves and runs every prerequisite phase, so partial
  pipelines (the CLI subcommands, the benchmarks) no longer need manual
  ordering — and a *strict* caller gets a typed
  :class:`~repro.net.errors.PhaseOrderError` instead of an ``assert``;
* independent branches execute concurrently under a pluggable executor
  (:class:`SerialExecutor` or :class:`ThreadedExecutor`): the ZMap, Sonar
  and Shodan snapshots fan out, classification overlaps the attack month,
  and the telescope plus the four intel stores run five-wide.  Every
  stochastic component draws from its own named
  :class:`~repro.net.prng.RandomStream`, so the executor choice never
  changes a byte of output — the one shared stream (fabric probe loss) is
  guarded by a phase *resource* that serialises its consumers whenever
  ``loss_rate > 0``;
* phase outputs are memoized in a content-addressed :class:`PhaseCache`
  (in-process LRU plus an optional on-disk pickle layer) keyed by
  ``(phase name, config fingerprint)``, so a second run with an equal
  config replays the expensive world/scan phases for free.  Cached
  artifacts are shared objects: treat them as read-only, as the test suite
  already does.  The attack phase detaches the lab honeypots from the
  fabric after the month so a cached world stays pristine for scan phases.

:class:`~repro.core.study.Study` is a thin facade over this module; direct
engine use looks like::

    engine = StudyEngine(StudyConfig.quick(), executor="thread")
    engine.ensure("infected")            # runs all eight phases
    print(engine.artifact("misconfig").total)
    print(engine.metrics.render())
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor as _PoolExecutor
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core import faults
from repro.core.config import StudyConfig
from repro.core.integrity import (
    QuarantineRecord,
    quarantine_file,
    unwrap_envelope,
    wrap_envelope,
)
from repro.core.columns import resolve_backend
from repro.core.metrics import PhaseMetric, StudyMetrics
from repro.core.tasks import TaskDeadline, TaskJournal
from repro.net.errors import (
    EngineError,
    EnvelopeError,
    FaultError,
    PhaseOrderError,
)

__all__ = [
    "PhaseSpec",
    "PhaseGraph",
    "PhaseCache",
    "CacheStats",
    "SerialExecutor",
    "ThreadedExecutor",
    "StudyEngine",
    "build_study_graph",
    "config_fingerprint",
    "default_cache",
]

#: Bumped whenever phase semantics change, so stale disk caches self-expire.
#: Version 2: disk entries are checksummed :mod:`repro.core.integrity`
#: envelopes instead of bare header dicts.
ENGINE_SCHEMA_VERSION = 2


# ---------------------------------------------------------------------------
# Config fingerprinting
# ---------------------------------------------------------------------------

def _normalize(value):
    """Reduce a config value to JSON-stable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: _normalize(getattr(value, f.name))
                for f in dataclasses.fields(value)
                if f.compare
            },
        }
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.name]
    if isinstance(value, (list, tuple)):
        return [_normalize(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _normalize(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def config_fingerprint(config: StudyConfig) -> str:
    """A content hash over the whole study configuration.

    Two configs with equal fingerprints produce byte-identical artifacts,
    so the fingerprint is the cache partition key.
    """
    payload = json.dumps(
        _normalize(config), sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.sha256(
        f"v{ENGINE_SCHEMA_VERSION}:{payload}".encode("utf-8")
    )
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Phase specifications and the graph
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PhaseSpec:
    """One node of the pipeline DAG."""

    name: str
    #: Artifact names this phase materializes.
    provides: Tuple[str, ...]
    #: Artifact names that must be materialized before :attr:`run` is called.
    requires: Tuple[str, ...] = ()
    #: Phase names that must complete first *when scheduled in the same
    #: resolution* — ordering-only edges for phases that touch shared state
    #: without a data dependency (the attack month mutates the fabric the
    #: fingerprinter probes).
    after: Tuple[str, ...] = ()
    #: Phases sharing a resource tag never run concurrently (e.g. the
    #: fabric's probe-loss stream when ``loss_rate > 0``).
    resources: Tuple[str, ...] = ()
    #: Paper-level rollup bucket for metrics (``scan``, ``intel`` …).
    group: str = ""
    #: Produces the artifacts; receives the engine as context.
    run: Callable[["StudyEngine"], Dict[str, object]] = None  # type: ignore
    #: Optional item counter for rate metrics.
    count: Optional[Callable[[Dict[str, object]], Optional[int]]] = None
    cacheable: bool = True
    #: Optional phases (extra vantage points, intel enrichment) may fail
    #: under ``fail_policy="degrade"``: the study records them as
    #: ``degraded``, materializes their artifacts as ``None`` and carries
    #: on — the paper's multi-vantage design treats partial data as the
    #: normal case, not the exception.
    optional: bool = False


class PhaseGraph:
    """Registry plus topological resolution over :class:`PhaseSpec` nodes."""

    def __init__(self) -> None:
        self._phases: "OrderedDict[str, PhaseSpec]" = OrderedDict()
        self._provider: Dict[str, str] = {}

    def register(self, spec: PhaseSpec) -> None:
        if spec.name in self._phases:
            raise EngineError(f"phase '{spec.name}' registered twice")
        for artifact in spec.provides:
            if artifact in self._provider:
                raise EngineError(
                    f"artifact '{artifact}' provided by both "
                    f"'{self._provider[artifact]}' and '{spec.name}'"
                )
        self._phases[spec.name] = spec
        for artifact in spec.provides:
            self._provider[artifact] = spec.name

    def phases(self) -> List[PhaseSpec]:
        return list(self._phases.values())

    def phase(self, name: str) -> PhaseSpec:
        try:
            return self._phases[name]
        except KeyError:
            raise PhaseOrderError(
                f"unknown phase '{name}'", missing=(name,)
            ) from None

    def provider_of(self, artifact: str) -> PhaseSpec:
        try:
            return self._phases[self._provider[artifact]]
        except KeyError:
            raise PhaseOrderError(
                f"no phase provides artifact '{artifact}'",
                missing=(artifact,),
            ) from None

    def artifacts(self) -> List[str]:
        return list(self._provider)

    def resolve(
        self,
        artifacts: Iterable[str],
        done: Iterable[str] = (),
    ) -> List[List[PhaseSpec]]:
        """Phases needed to materialize ``artifacts``, as parallel waves.

        ``done`` phases (already executed) are excluded along with their
        transitive contribution.  Each returned wave contains mutually
        independent phases; waves are in dependency order, and phases
        within a wave keep registration (canonical pipeline) order so the
        serial executor reproduces the paper's original sequence exactly.
        """
        done_set = set(done)
        included: "OrderedDict[str, PhaseSpec]" = OrderedDict()
        visiting: List[str] = []

        def visit(spec: PhaseSpec) -> None:
            if spec.name in included or spec.name in done_set:
                return
            if spec.name in visiting:
                cycle = " -> ".join(visiting + [spec.name])
                raise EngineError(f"phase dependency cycle: {cycle}")
            visiting.append(spec.name)
            for requirement in spec.requires:
                visit(self.provider_of(requirement))
            visiting.pop()
            included[spec.name] = spec

        for artifact in artifacts:
            visit(self.provider_of(artifact))

        # Re-order into registration order, then layer into waves.
        ordered = [s for s in self._phases.values() if s.name in included]
        edges: Dict[str, List[str]] = {s.name: [] for s in ordered}
        for spec in ordered:
            for requirement in spec.requires:
                provider = self.provider_of(requirement).name
                if provider in edges:
                    edges[spec.name].append(provider)
            for predecessor in spec.after:
                if predecessor in edges:
                    edges[spec.name].append(predecessor)

        waves: List[List[PhaseSpec]] = []
        placed: set = set()
        remaining = list(ordered)
        while remaining:
            wave = [
                spec for spec in remaining
                if all(dep in placed for dep in edges[spec.name])
            ]
            if not wave:  # defensive: visit() already rejects cycles
                names = ", ".join(spec.name for spec in remaining)
                raise EngineError(f"unschedulable phases: {names}")
            waves.append(wave)
            placed.update(spec.name for spec in wave)
            remaining = [spec for spec in remaining if spec.name not in placed]
        return waves


# ---------------------------------------------------------------------------
# Artifact cache
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`PhaseCache`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    #: Disk entries that failed envelope verification and were quarantined.
    corrupt: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class PhaseCache:
    """Content-addressed phase-artifact store: in-process LRU + disk.

    Keys are ``(phase name, config fingerprint)`` pairs pre-hashed by the
    engine.  The in-process layer returns the *same* artifact objects to
    every engine sharing the cache — by design, since studies never mutate
    results.  The optional disk layer (``directory=…``) pickles each entry
    atomically and is best-effort: unpicklable artifacts or I/O failures
    (including injected ``cache.io`` faults) degrade to a miss, never an
    error.

    Disk entries are sealed in a checksummed
    :mod:`repro.core.integrity` envelope carrying
    :data:`ENGINE_SCHEMA_VERSION`, the cache key and the config
    fingerprint: a pickle written by older code, for a different config,
    or damaged in storage (bit flip, truncation — any single-bit change
    fails the SHA-256) is *detected* on read, moved to ``quarantine/``
    with a reasoned :class:`~repro.core.integrity.QuarantineRecord`
    (collected in :attr:`quarantined`, counted in ``stats.corrupt``), and
    served as a miss so the phase transparently recomputes.
    """

    def __init__(
        self,
        max_entries: int = 256,
        directory: Optional[Union[str, os.PathLike]] = None,
        quarantine_namespace: str = "",
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.directory = (
            os.path.expanduser(os.fspath(directory)) if directory else None
        )
        #: Tenant namespace for quarantined entries (shared stores only).
        self.quarantine_namespace = quarantine_namespace
        self.stats = CacheStats()
        #: Disk entries moved aside by :meth:`get`, in detection order.
        self.quarantined: List[QuarantineRecord] = []
        self._entries: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._lock = threading.Lock()

    # -- keys -------------------------------------------------------------

    @staticmethod
    def key_for(phase: str, fingerprint: str) -> str:
        digest = hashlib.sha256(f"{phase}@{fingerprint}".encode("utf-8"))
        return digest.hexdigest()

    # -- lookup -----------------------------------------------------------

    def get(
        self, key: str, fingerprint: str = ""
    ) -> Tuple[Optional[Dict[str, object]], bool]:
        """Return ``(artifacts, came_from_disk)``; ``(None, False)`` on miss.

        ``fingerprint`` is matched against the disk entry's header; the
        in-process layer needs no check because ``key`` already hashes it.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry, False
        entry = self._disk_load(key, fingerprint)
        if entry is not None:
            with self._lock:
                self._store(key, entry)
                self.stats.hits += 1
                self.stats.disk_hits += 1
            return entry, True
        with self._lock:
            self.stats.misses += 1
        return None, False

    def put(
        self, key: str, artifacts: Dict[str, object], fingerprint: str = ""
    ) -> None:
        with self._lock:
            self._store(key, artifacts)
            self.stats.stores += 1
        self._disk_dump(key, artifacts, fingerprint)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- internals ---------------------------------------------------------

    def _store(self, key: str, artifacts: Dict[str, object]) -> None:
        self._entries[key] = artifacts
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _disk_path(self, key: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"{key}.pkl")

    def _quarantine(self, path: str, key: str, reason: str) -> None:
        record = quarantine_file(
            path, key=key, reason=reason, stage="phase.load",
            namespace=self.quarantine_namespace,
        )
        with self._lock:
            self.stats.corrupt += 1
            if record is not None:
                self.quarantined.append(record)

    def _disk_load(
        self, key: str, fingerprint: str = ""
    ) -> Optional[Dict[str, object]]:
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            faults.maybe_fail("cache.io", "phase.load", key)
            with open(path, "rb") as handle:
                blob = handle.read()
        except (OSError, FaultError):
            return None  # absent entry or degraded I/O: plain miss
        blob = faults.maybe_corrupt(blob, "phase.load", key)
        try:
            payload = unwrap_envelope(
                blob,
                schema=ENGINE_SCHEMA_VERSION,
                kind="phase",
                key=key,
                fingerprint=fingerprint,
            )
        except EnvelopeError as error:
            self._quarantine(path, key, error.reason)
            return None
        try:
            artifacts = pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError, TypeError):
            self._quarantine(path, key, "unpicklable")
            return None
        if not isinstance(artifacts, dict):
            self._quarantine(path, key, "malformed-payload")
            return None
        return artifacts

    def _disk_dump(
        self, key: str, artifacts: Dict[str, object], fingerprint: str = ""
    ) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            faults.maybe_fail("cache.io", "phase.dump", key)
            blob = wrap_envelope(
                pickle.dumps(artifacts, pickle.HIGHEST_PROTOCOL),
                schema=ENGINE_SCHEMA_VERSION,
                kind="phase",
                key=key,
                fingerprint=fingerprint,
            )
            blob = faults.maybe_corrupt(blob, "phase.dump", key)
            os.makedirs(self.directory, exist_ok=True)
            fd, temp = tempfile.mkstemp(
                dir=self.directory, suffix=".pkl.tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(temp, path)
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
        except (OSError, FaultError, pickle.PicklingError, AttributeError,
                TypeError, RecursionError):
            pass  # disk layer is best-effort


_DEFAULT_CACHE = PhaseCache()


def default_cache() -> PhaseCache:
    """The process-wide cache :class:`~repro.core.study.Study` uses."""
    return _DEFAULT_CACHE


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------

class SerialExecutor:
    """Runs each wave's tasks one after another (the reference order)."""

    name = "serial"

    def run(self, tasks: Sequence[Callable[[], None]]) -> None:
        for task in tasks:
            task()


class ThreadedExecutor:
    """Runs each wave's tasks on a thread pool.

    Safe because every phase draws from its own named PRNG stream and the
    engine serialises phases sharing a declared resource; the determinism
    tests assert byte-identical tables against :class:`SerialExecutor`.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers

    def run(self, tasks: Sequence[Callable[[], None]]) -> None:
        if len(tasks) <= 1:
            for task in tasks:
                task()
            return
        workers = self.max_workers or min(len(tasks), os.cpu_count() or 4)
        with _PoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(task) for task in tasks]
            for future in futures:
                future.result()


def _make_executor(
    executor: Union[None, str, SerialExecutor, ThreadedExecutor]
):
    if executor is None or executor == "serial":
        return SerialExecutor()
    if executor in ("thread", "threads", "threaded"):
        return ThreadedExecutor()
    if hasattr(executor, "run"):
        return executor
    raise EngineError(f"unknown executor {executor!r}")


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class StudyEngine:
    """Schedules, caches and measures the study phase graph."""

    def __init__(
        self,
        config: Optional[StudyConfig] = None,
        *,
        executor: Union[None, str, SerialExecutor, ThreadedExecutor] = None,
        cache: Union[None, bool, PhaseCache] = None,
        graph: Optional[PhaseGraph] = None,
    ) -> None:
        self.config = config or StudyConfig()
        self.executor = _make_executor(executor)
        if cache is None or cache is True:
            self.cache: Optional[PhaseCache] = _DEFAULT_CACHE
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        self.graph = graph or build_study_graph(self.config)
        self.fingerprint = config_fingerprint(self.config)
        self.metrics = StudyMetrics(
            executor=self.executor.name,
            backend=resolve_backend(getattr(self.config, "backend", None)),
        )
        self._artifacts: Dict[str, object] = {}
        self._done: set = set()
        self._degraded: set = set()
        self._tainted: set = set()
        self._lock = threading.Lock()
        #: Optional observer called with each :class:`PhaseMetric` as its
        #: phase completes (cache hits included).  The streaming campaign
        #: service uses it to surface generation progress live; it must
        #: not mutate engine state and runs outside the engine lock.
        self.on_phase: Optional[Callable[[PhaseMetric], None]] = None

    # -- artifact access ---------------------------------------------------

    def materialized(self, artifact: str) -> bool:
        return artifact in self._artifacts

    def artifact(self, name: str) -> object:
        """A materialized artifact; strict (raises PhaseOrderError)."""
        try:
            return self._artifacts[name]
        except KeyError:
            provider = self.graph.provider_of(name).name
            raise PhaseOrderError(
                f"artifact '{name}' not materialized — run phase "
                f"'{provider}' (or engine.ensure({name!r})) first",
                missing=(name,),
            ) from None

    # -- execution ---------------------------------------------------------

    def ensure(self, *artifacts: str) -> None:
        """Materialize ``artifacts``, running prerequisite phases as needed."""
        missing = [a for a in artifacts if a not in self._artifacts]
        if not missing:
            return
        waves = self.graph.resolve(missing, done=self._done)
        for wave in waves:
            self.executor.run(self._wave_tasks(wave))

    def run_all(self) -> None:
        """Materialize every artifact the graph knows about."""
        self.ensure(*self.graph.artifacts())

    def task_journal(self, plane: str) -> Optional[TaskJournal]:
        """The per-task completion journal for one measurement plane.

        ``None`` unless the config names a ``journal_dir``.  Entries are
        partitioned by config fingerprint, so a resumed run can only ever
        replay results an identically-configured run produced — a changed
        seed or scale reads as an empty journal.
        """
        journal_dir = getattr(self.config, "journal_dir", None)
        if not journal_dir:
            return None
        directory = os.path.join(
            os.path.expanduser(os.fspath(journal_dir)),
            self.fingerprint[:16],
            plane,
        )
        return TaskJournal(
            directory,
            resume=getattr(self.config, "resume", False),
            fingerprint=self.fingerprint,
            quarantine_namespace=getattr(
                self.config, "quarantine_namespace", ""
            ),
        )

    def task_deadline(self) -> Optional[TaskDeadline]:
        """A fresh per-plane deadline supervisor, or ``None`` when unarmed.

        Fresh per call so each plane's stall rows accumulate on its own
        supervisor; the phase records them into :attr:`metrics` when the
        plane finishes.
        """
        spec = getattr(self.config, "task_deadline", None)
        if not spec:
            return None
        return TaskDeadline.parse(spec)

    # -- internals ---------------------------------------------------------

    def _wave_tasks(self, wave: Sequence[PhaseSpec]):
        """One callable per independently-runnable unit of a wave.

        Phases sharing a resource tag are folded into a single sequential
        task (in canonical order) so their shared state is consumed in a
        deterministic order under any executor.
        """
        buckets: List[List[PhaseSpec]] = []
        by_resource: Dict[str, List[PhaseSpec]] = {}
        for spec in wave:
            tag = spec.resources[0] if spec.resources else None
            if tag is not None and tag in by_resource:
                by_resource[tag].append(spec)
                continue
            bucket = [spec]
            if tag is not None:
                by_resource[tag] = bucket
            buckets.append(bucket)

        def task_for(bucket: List[PhaseSpec]):
            def task() -> None:
                for spec in bucket:
                    self._run_phase(spec)
            return task

        return [task_for(bucket) for bucket in buckets]

    def _upstream_degraded(self, spec: PhaseSpec) -> Tuple[bool, bool]:
        """``(degraded_input, tainted_input)`` for a phase's requirements.

        ``degraded_input``: some required artifact is ``None`` because its
        provider *degraded* this run — an optional consumer degrades too.
        ``tainted_input``: some requirement was produced downstream of a
        degraded phase, so this phase's output reflects partial data and
        must not be cached where a healthy run would find it.
        """
        with self._lock:
            degraded = set(self._degraded)
            tainted = set(self._tainted)
        providers = [
            self.graph.provider_of(requirement).name
            for requirement in spec.requires
        ]
        return (
            any(name in degraded for name in providers),
            any(name in degraded or name in tainted for name in providers),
        )

    def _run_phase(self, spec: PhaseSpec) -> None:
        started = time.perf_counter()
        artifacts: Optional[Dict[str, object]] = None
        hit = disk = False
        status = "ok"
        key = ""
        degradable = (
            spec.optional
            and getattr(self.config, "fail_policy", "abort") == "degrade"
        )
        degraded_input, tainted_input = self._upstream_degraded(spec)
        if degradable and degraded_input:
            artifacts = {name: None for name in spec.provides}
            status = "degraded"
        use_cache = (
            self.cache is not None and spec.cacheable and not tainted_input
        )
        if artifacts is None and use_cache:
            key = PhaseCache.key_for(spec.name, self.fingerprint)
            artifacts, disk = self.cache.get(key, self.fingerprint)
            hit = artifacts is not None
        if artifacts is None:
            try:
                artifacts = spec.run(self)
            except (PhaseOrderError, EngineError):
                raise  # pipeline bugs, not data failures — never degrade
            except Exception:
                if not degradable:
                    raise
                artifacts = {name: None for name in spec.provides}
                status = "degraded"
            if status == "ok" and use_cache:
                # Degraded (all-None) artifacts and phases fed partial
                # inputs are never cached: a later healthy run must not
                # inherit this run's failures.
                self.cache.put(key, artifacts, self.fingerprint)
        elapsed = time.perf_counter() - started
        items = spec.count(artifacts) if spec.count is not None else None
        metric = PhaseMetric(
            phase=spec.name,
            group=spec.group or spec.name,
            seconds=elapsed,
            cache_hit=hit,
            disk_hit=disk,
            items=items,
            status=status,
        )
        with self._lock:
            self._artifacts.update(artifacts)
            self._done.add(spec.name)
            if status == "degraded":
                self._degraded.add(spec.name)
            elif tainted_input:
                self._tainted.add(spec.name)
            self.metrics.record(metric)
        if self.on_phase is not None:
            self.on_phase(metric)


# ---------------------------------------------------------------------------
# The study graph: the paper's eight phases as specs
# ---------------------------------------------------------------------------

def _phase_world(engine: StudyEngine) -> Dict[str, object]:
    from repro.internet.population import PopulationBuilder
    from repro.net.asn import AsnRegistry
    from repro.net.geo import GeoRegistry

    population = PopulationBuilder(engine.config.population).build()
    return {
        "population": population,
        "geo": GeoRegistry(engine.config.seed),
        "asn": AsnRegistry(engine.config.seed),
    }


def _phase_zmap(engine: StudyEngine) -> Dict[str, object]:
    from repro.scanner.blocklist import (
        EU_COUNTRIES,
        CompositeBlocklist,
        GeoBlocklist,
        zmap_default_blocklist,
    )
    from repro.scanner.zmap import InternetScanner

    population = engine.artifact("population")
    blocklist = zmap_default_blocklist()
    if engine.config.use_eu_blocklist:
        blocklist = CompositeBlocklist(
            [blocklist, GeoBlocklist(engine.artifact("geo"), EU_COUNTRIES)]
        )
    scanner = InternetScanner(
        population.internet, engine.config.scan, blocklist
    )
    journal = engine.task_journal("scan")
    deadline = engine.task_deadline()
    database = scanner.run_campaign(journal=journal, deadline=deadline)
    engine.metrics.record_shards(scanner.shard_timings)
    engine.metrics.record_executor("scan", scanner.executor_stats)
    engine.metrics.record_supervision(
        "scan", journal=journal, deadline=deadline
    )
    engine.metrics.record_store("scan", database)
    return {"zmap_db": database}


def _phase_sonar(engine: StudyEngine) -> Dict[str, object]:
    from repro.scanner.datasets import project_sonar

    if not engine.config.use_open_datasets:
        return {"sonar_db": None}
    faults.maybe_fail("dataset.load", "sonar")
    population = engine.artifact("population")
    provider = project_sonar(engine.config.seed)
    provider.retries = engine.config.scan.retries
    return {"sonar_db": provider.snapshot(population.internet)}


def _phase_shodan(engine: StudyEngine) -> Dict[str, object]:
    from repro.scanner.datasets import shodan

    if not engine.config.use_open_datasets:
        return {"shodan_db": None}
    faults.maybe_fail("dataset.load", "shodan")
    population = engine.artifact("population")
    provider = shodan(engine.config.seed)
    provider.retries = engine.config.scan.retries
    return {"shodan_db": provider.snapshot(population.internet)}


def _phase_merge(engine: StudyEngine) -> Dict[str, object]:
    merged = engine.artifact("zmap_db")
    for name in ("sonar_db", "shodan_db"):
        other = engine.artifact(name)
        if other is not None:
            merged = merged.merge(other)
    return {"merged_db": merged}


def _phase_fingerprint(engine: StudyEngine) -> Dict[str, object]:
    from repro.analysis.fingerprint import HoneypotFingerprinter

    fingerprinter = HoneypotFingerprinter()
    report = fingerprinter.fingerprint(engine.artifact("merged_db"))
    if engine.config.active_fingerprinting:
        population = engine.artifact("population")
        report = fingerprinter.active_ssh_probe(
            population.internet,
            (host.address for host in population.internet.hosts()),
            report=report,
        )
    return {"fingerprints": report}


def _phase_classify(engine: StudyEngine) -> Dict[str, object]:
    from repro.analysis.country import country_distribution
    from repro.analysis.device_type import identify_device_types
    from repro.analysis.misconfig import classify_database

    merged = engine.artifact("merged_db")
    fingerprints = engine.artifact("fingerprints")
    misconfig = classify_database(
        merged, exclude_addresses=fingerprints.addresses()
    )
    return {
        "misconfig": misconfig,
        "device_types": identify_device_types(merged),
        "countries": country_distribution(
            misconfig.all_addresses(), engine.artifact("geo")
        ),
    }


def _phase_attacks(engine: StudyEngine) -> Dict[str, object]:
    from repro.attacks.schedule import AttackScheduler
    from repro.honeypots.deployment import build_deployment

    population = engine.artifact("population")
    deployment = build_deployment(
        backend=resolve_backend(engine.config.attacks.backend)
    )
    if engine.config.capture_pcap:
        for honeypot in deployment.honeypots:
            honeypot.enable_pcap()
    internet = population.internet
    # A cached world may still carry a previous run's lab addresses.
    deployment.detach(internet)
    deployment.attach(internet)
    try:
        scheduler = AttackScheduler(
            internet, deployment, population, engine.config.attacks
        )
        journal = engine.task_journal("attacks")
        deadline = engine.task_deadline()
        schedule = scheduler.run(journal=journal, deadline=deadline)
        engine.metrics.record_tasks(scheduler.task_timings)
        engine.metrics.record_executor("attacks", scheduler.executor_stats)
        engine.metrics.record_supervision(
            "attacks", journal=journal, deadline=deadline
        )
        engine.metrics.record_store("attacks", schedule.log)
    finally:
        # Leave the cached world pristine for scan/fingerprint phases.
        deployment.detach(internet)
    return {"deployment": deployment, "schedule": schedule}


def _phase_telescope(engine: StudyEngine) -> Dict[str, object]:
    from repro.telescope.telescope import NetworkTelescope

    telescope = NetworkTelescope(
        engine.artifact("schedule").registry,
        engine.artifact("geo"),
        engine.artifact("asn"),
        engine.config.telescope,
    )
    journal = engine.task_journal("telescope")
    deadline = engine.task_deadline()
    capture = telescope.capture_month(journal=journal, deadline=deadline)
    engine.metrics.record_tasks(telescope.task_timings)
    engine.metrics.record_executor("telescope", telescope.executor_stats)
    engine.metrics.record_supervision(
        "telescope", journal=journal, deadline=deadline
    )
    engine.metrics.record_store("telescope", capture.writer)
    return {"telescope": capture}


def _phase_greynoise(engine: StudyEngine) -> Dict[str, object]:
    from repro.intel.greynoise import GreyNoiseDB

    faults.maybe_fail("dataset.load", "greynoise")
    schedule = engine.artifact("schedule")
    return {
        "greynoise": GreyNoiseDB.build_from(
            schedule.registry, engine.config.seed
        )
    }


def _phase_virustotal(engine: StudyEngine) -> Dict[str, object]:
    from repro.intel.virustotal import VirusTotalDB

    faults.maybe_fail("dataset.load", "virustotal")
    schedule = engine.artifact("schedule")
    return {
        "virustotal": VirusTotalDB.build_from(
            schedule.registry, schedule.corpus, schedule.rdns,
            engine.config.seed,
        )
    }


def _phase_censys(engine: StudyEngine) -> Dict[str, object]:
    from repro.intel.censysiot import CensysIotDB

    faults.maybe_fail("dataset.load", "censys_iot")
    engine.artifact("schedule")  # ordering: intel follows the attack month
    return {
        "censys_iot": CensysIotDB.build_from(
            engine.artifact("population"), engine.config.seed
        )
    }


def _phase_exonerator(engine: StudyEngine) -> Dict[str, object]:
    from repro.intel.exonerator import ExoneraTorDB

    faults.maybe_fail("dataset.load", "exonerator")
    schedule = engine.artifact("schedule")
    return {"exonerator": ExoneraTorDB.build_from(schedule.registry)}


def _phase_joins(engine: StudyEngine) -> Dict[str, object]:
    from repro.analysis.infected import analyze_infected_hosts
    from repro.analysis.multistage import detect_multistage

    schedule = engine.artifact("schedule")
    misconfig = engine.artifact("misconfig")
    return {
        "multistage": detect_multistage(schedule.log, schedule.rdns),
        "infected": analyze_infected_hosts(
            misconfig.all_addresses(),
            schedule.log,
            engine.artifact("telescope"),
            engine.artifact("virustotal"),
            censys=engine.artifact("censys_iot"),
            rdns=schedule.rdns,
        ),
    }


def _count_db(name: str):
    def count(artifacts: Dict[str, object]) -> Optional[int]:
        database = artifacts.get(name)
        return len(database) if database is not None else None
    return count


def _count_schedule(artifacts: Dict[str, object]) -> Optional[int]:
    schedule = artifacts.get("schedule")
    return len(schedule.log) if schedule is not None else None


def _count_population(artifacts: Dict[str, object]) -> Optional[int]:
    population = artifacts.get("population")
    return len(population.hosts) if population is not None else None


def _count_telescope(artifacts: Dict[str, object]) -> Optional[int]:
    capture = artifacts.get("telescope")
    if capture is None:
        return None
    return sum(capture.packets_by_protocol.values())


def build_study_graph(config: StudyConfig) -> PhaseGraph:
    """The paper's methodology as a :class:`PhaseGraph`.

    Registration order is the canonical serial order.  The three scan
    snapshots used to serialise on a ``fabric.loss`` resource when probe
    loss was drawn from a shared sequential stream; loss verdicts are now
    keyed per probe flow (:class:`~repro.internet.fabric.ProbeLossModel`),
    so concurrent scan phases cannot perturb each other and need no
    resource fencing.
    """
    graph = PhaseGraph()
    graph.register(PhaseSpec(
        name="world", provides=("population", "geo", "asn"),
        group="world", run=_phase_world, count=_count_population,
    ))
    graph.register(PhaseSpec(
        name="zmap", provides=("zmap_db",),
        requires=("population", "geo"),
        group="scan", run=_phase_zmap, count=_count_db("zmap_db"),
    ))
    # The sonar/shodan vantage points and the intel stores are optional:
    # under fail_policy="degrade" a failure marks them degraded (their
    # artifacts stay None, as when disabled by config) instead of
    # aborting the study.  merge already tolerates None snapshots; joins
    # cascades to degraded when an intel store it needs degraded.
    graph.register(PhaseSpec(
        name="sonar", provides=("sonar_db",),
        requires=("population",),
        group="scan", run=_phase_sonar, count=_count_db("sonar_db"),
        optional=True,
    ))
    graph.register(PhaseSpec(
        name="shodan", provides=("shodan_db",),
        requires=("population",),
        group="scan", run=_phase_shodan, count=_count_db("shodan_db"),
        optional=True,
    ))
    graph.register(PhaseSpec(
        name="merge", provides=("merged_db",),
        requires=("zmap_db", "sonar_db", "shodan_db"),
        group="scan", run=_phase_merge, count=_count_db("merged_db"),
    ))
    graph.register(PhaseSpec(
        name="fingerprint", provides=("fingerprints",),
        requires=("merged_db", "population"),
        group="fingerprint", run=_phase_fingerprint,
    ))
    graph.register(PhaseSpec(
        name="classify", provides=("misconfig", "device_types", "countries"),
        requires=("merged_db", "fingerprints", "geo"),
        group="classify", run=_phase_classify,
    ))
    graph.register(PhaseSpec(
        name="attacks", provides=("deployment", "schedule"),
        requires=("population",),
        # The month mutates the fabric while it runs; never interleave it
        # with the active fingerprinting probe of the same world.
        after=("fingerprint",),
        group="attacks", run=_phase_attacks, count=_count_schedule,
    ))
    graph.register(PhaseSpec(
        name="telescope", provides=("telescope",),
        requires=("schedule", "geo", "asn"),
        group="telescope", run=_phase_telescope, count=_count_telescope,
    ))
    graph.register(PhaseSpec(
        name="intel.greynoise", provides=("greynoise",),
        requires=("schedule",), group="intel", run=_phase_greynoise,
        optional=True,
    ))
    graph.register(PhaseSpec(
        name="intel.virustotal", provides=("virustotal",),
        requires=("schedule",), group="intel", run=_phase_virustotal,
        optional=True,
    ))
    graph.register(PhaseSpec(
        name="intel.censys", provides=("censys_iot",),
        requires=("population", "schedule"),
        group="intel", run=_phase_censys,
        optional=True,
    ))
    graph.register(PhaseSpec(
        name="intel.exonerator", provides=("exonerator",),
        requires=("schedule",), group="intel", run=_phase_exonerator,
        optional=True,
    ))
    graph.register(PhaseSpec(
        name="joins", provides=("multistage", "infected"),
        requires=("schedule", "telescope", "misconfig", "virustotal",
                  "censys_iot"),
        group="joins", run=_phase_joins,
        optional=True,
    ))
    return graph
