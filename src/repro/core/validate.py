"""Cross-plane structural invariants over finished study artifacts.

Checksummed envelopes (:mod:`repro.core.integrity`) prove an artifact
survived *storage*; this module proves the artifacts still satisfy the
*structural* contracts the analysis stage silently depends on — the
referential consistency a real measurement pipeline audits before
publishing numbers.  Each :class:`Invariant` names the artifacts it needs
and the measurement plane it belongs to; :func:`run_validation` asks the
engine to :meth:`~repro.core.engine.StudyEngine.ensure` exactly those
artifacts, so invariants reuse the phase DAG and run per-plane as soon as
that plane's artifacts exist — scan invariants never wait for the attack
month, and a cached artifact is validated without recomputation.

The default registry checks:

* ``scan.canonical-order`` — the ZMap database is in strictly increasing
  canonical ``(address, port, protocol)`` order (the sharded merge
  contract; also implies no duplicate probe results);
* ``scan.merge-dedup`` — the merged multi-vantage database has no
  duplicate ``(address, port, protocol)`` triples and covers our scan;
* ``attacks.sources-registered`` — every EventStore source IP lies in the
  simulated population space: a registered actor with a valid IPv4;
* ``attacks.honeypot-counts`` — the per-honeypot filter counts behind the
  report tables agree with a full recount of the log, and every event day
  falls inside the attack month;
* ``telescope.flow-days`` — every flowtuple lands within the campaign
  window, and the writer's day files agree with its records;
* ``analysis.misconfig-consistent`` — misconfigured devices exclude
  fingerprinted honeypots and are drawn from scanned hosts;
* ``stream.snapshots_match_batch`` — fresh online operators
  (:mod:`repro.stream.operators`) fed the plane stores in uneven chunks
  produce snapshots identical to the batch analyses (the streaming
  service's batch-equivalence contract).

The CLI's ``repro validate`` subcommand runs the registry and maps any
violation to exit code 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "Violation",
    "Invariant",
    "InvariantRegistry",
    "default_registry",
    "run_validation",
]


@dataclass(frozen=True)
class Violation:
    """One failed structural invariant, with a human-readable message."""

    invariant: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {"invariant": self.invariant, "message": self.message}


@dataclass(frozen=True)
class Invariant:
    """One structural contract over materialized artifacts.

    ``check`` receives the engine (artifacts already ensured) and returns
    violation messages — empty when the invariant holds.
    """

    name: str
    #: Measurement plane bucket (``scan``, ``attacks``, ``telescope``,
    #: ``analysis``) — validation order groups by plane.
    plane: str
    #: Artifact names :func:`run_validation` ensures before ``check``.
    requires: Tuple[str, ...]
    check: Callable[[object], List[str]]


class InvariantRegistry:
    """Ordered collection of invariants, grouped by plane."""

    def __init__(self) -> None:
        self._invariants: List[Invariant] = []

    def register(self, invariant: Invariant) -> None:
        if any(inv.name == invariant.name for inv in self._invariants):
            raise ValueError(
                f"invariant {invariant.name!r} registered twice"
            )
        self._invariants.append(invariant)

    def invariants(self) -> List[Invariant]:
        """Registration order — registries register plane-by-plane, so a
        plane's invariants run as soon as its artifacts exist."""
        return list(self._invariants)

    def __len__(self) -> int:
        return len(self._invariants)


# ---------------------------------------------------------------------------
# Default invariants
# ---------------------------------------------------------------------------

_IPV4_SPACE = 1 << 32


def _check_scan_canonical(engine) -> List[str]:
    database = engine.artifact("zmap_db")
    previous = None
    for index, row in enumerate(database.iter_rows()):
        triple = (row.address, row.port, row.protocol)
        if previous is not None and triple <= previous:
            return [
                f"row {index} {triple!r} breaks canonical "
                f"(address, port, protocol) order after {previous!r}"
            ]
        previous = triple
    return []


def _check_merge_dedup(engine) -> List[str]:
    merged = engine.artifact("merged_db")
    zmap = engine.artifact("zmap_db")
    problems: List[str] = []
    seen = set()
    for row in merged.iter_rows():
        triple = (row.address, row.port, row.protocol)
        if triple in seen:
            problems.append(
                f"duplicate (address, port, protocol) triple {triple!r} "
                "survived the multi-vantage merge"
            )
            break
        seen.add(triple)
    missing = len(zmap.unique_hosts() - merged.unique_hosts())
    if missing:
        problems.append(
            f"{missing} host(s) from our own scan are absent from the "
            "merged database (merge must be a superset)"
        )
    return problems


def _check_attack_sources(engine) -> List[str]:
    schedule = engine.artifact("schedule")
    registry = schedule.registry
    for source in set(schedule.log.column("source")):
        if not 0 < source < _IPV4_SPACE:
            return [
                f"event source {source} is outside the IPv4 address space"
            ]
        if registry.get(source) is None:
            return [
                f"event source {source} is not a registered actor — "
                "attack events must come from the simulated population"
            ]
    return []


def _check_honeypot_counts(engine) -> List[str]:
    schedule = engine.artifact("schedule")
    config = engine.config
    log = schedule.log
    problems: List[str] = []
    recount: Dict[str, int] = {}
    for name in log.column("honeypot"):
        recount[name] = recount.get(name, 0) + 1
    for name, expected in sorted(recount.items()):
        filtered = len(log.by_honeypot(name))
        if filtered != expected:
            problems.append(
                f"honeypot filter {name!r} returns {filtered} events but "
                f"a full recount finds {expected} — the report "
                "tables would disagree with the log"
            )
    if sum(recount.values()) != len(log):
        problems.append(
            f"per-honeypot counts sum to {sum(recount.values())} but the "
            f"log holds {len(log)} events"
        )
    days = config.attacks.days
    bad_days = [day for day in set(log.column("day"))
                if not 0 <= day < days]
    if bad_days:
        problems.append(
            f"event day(s) {sorted(bad_days)} fall outside the "
            f"{days}-day attack month"
        )
    return problems


def _check_telescope_days(engine) -> List[str]:
    capture = engine.artifact("telescope")
    days = engine.config.telescope.days
    writer_days = capture.writer.days()
    bad = [day for day in writer_days if not 0 <= day < days]
    if bad:
        return [
            f"flowtuple day file(s) {bad} fall outside the "
            f"{days}-day campaign window"
        ]
    for record in capture.writer.records():
        if not 0 <= record.day < days:
            return [
                f"flowtuple record at t={record.time} (day {record.day}) "
                f"falls outside the {days}-day campaign window"
            ]
    return []


def _check_misconfig(engine) -> List[str]:
    misconfig = engine.artifact("misconfig")
    fingerprints = engine.artifact("fingerprints")
    merged = engine.artifact("merged_db")
    problems: List[str] = []
    flagged = misconfig.all_addresses()
    honeypots = flagged & fingerprints.addresses()
    if honeypots:
        problems.append(
            f"{len(honeypots)} fingerprinted honeypot(s) were classified "
            "as misconfigured devices — the honeypot filter must exclude "
            "them"
        )
    unscanned = flagged - merged.unique_hosts()
    if unscanned:
        problems.append(
            f"{len(unscanned)} misconfigured address(es) never appear in "
            "the merged scan database"
        )
    return problems


def _check_stream_parity(engine) -> List[str]:
    """The streaming contract: chunked operators == batch analyses.

    Replays the finished plane stores through a fresh stock operator set
    in deliberately uneven chunks (a prime size, so chunk boundaries
    land everywhere), then compares every snapshot digest against its
    batch oracle — exactly what a live ``repro serve`` campaign
    guarantees about its final snapshots.
    """
    from repro.stream.operators import Operator  # noqa: F401 (contract)
    from repro.stream.service import default_operators, snapshots_match_batch

    results = _StreamArtifacts(engine)
    by_plane: Dict[str, List] = {}
    for operator in default_operators(results):
        by_plane.setdefault(operator.plane, []).append(operator)

    def feed(plane: str, rows: List) -> None:
        for start in range(0, len(rows), 97):
            chunk = rows[start:start + 97]
            for operator in by_plane.get(plane, []):
                operator.feed(chunk)

    feed("scan", list(results.merged_db.iter_rows()))
    feed("attacks", list(results.schedule.log.iter_rows()))
    feed("telescope", list(results.telescope.writer.records()))
    named = {
        operator.name: operator
        for operators in by_plane.values() for operator in operators
    }
    return snapshots_match_batch(results, named)


class _StreamArtifacts:
    """Adapter giving :func:`snapshots_match_batch` its results view."""

    _FIELDS = ("merged_db", "fingerprints", "countries", "schedule",
               "telescope", "exonerator", "geo")

    def __init__(self, engine) -> None:
        for name in self._FIELDS:
            setattr(self, name, engine.artifact(name))


def default_registry() -> InvariantRegistry:
    """The stock invariants, registered plane-by-plane in pipeline order."""
    registry = InvariantRegistry()
    registry.register(Invariant(
        name="scan.canonical-order", plane="scan",
        requires=("zmap_db",), check=_check_scan_canonical,
    ))
    registry.register(Invariant(
        name="scan.merge-dedup", plane="scan",
        requires=("merged_db",), check=_check_merge_dedup,
    ))
    registry.register(Invariant(
        name="attacks.sources-registered", plane="attacks",
        requires=("schedule",), check=_check_attack_sources,
    ))
    registry.register(Invariant(
        name="attacks.honeypot-counts", plane="attacks",
        requires=("schedule",), check=_check_honeypot_counts,
    ))
    registry.register(Invariant(
        name="telescope.flow-days", plane="telescope",
        requires=("telescope",), check=_check_telescope_days,
    ))
    registry.register(Invariant(
        name="analysis.misconfig-consistent", plane="analysis",
        requires=("misconfig", "fingerprints", "merged_db"),
        check=_check_misconfig,
    ))
    registry.register(Invariant(
        name="stream.snapshots_match_batch", plane="stream",
        requires=("merged_db", "fingerprints", "countries", "schedule",
                  "telescope", "exonerator", "geo"),
        check=_check_stream_parity,
    ))
    return registry


def run_validation(
    engine, registry: Optional[InvariantRegistry] = None
) -> List[Violation]:
    """Run every invariant against (and through) a study engine.

    Artifacts are ensured invariant-by-invariant, so each plane's checks
    run as soon as the phase DAG can materialize that plane — and a
    violation in an early plane is reported even if a later plane's
    phases would fail outright.  Returns all violations, in registry
    order; an empty list means the artifacts are structurally sound.
    """
    registry = registry or default_registry()
    violations: List[Violation] = []
    for invariant in registry.invariants():
        engine.ensure(*invariant.requires)
        for message in invariant.check(engine):
            violations.append(Violation(invariant.name, message))
    return violations
