"""Text rendering of the paper's tables and figures from study results.

Each ``render_*`` function prints one artifact in the same layout the paper
uses, with the scaled measured values.  The benchmark harness calls these so
`pytest benchmarks/ --benchmark-only` output visually mirrors the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.study import StudyResults
from repro.core.taxonomy import AttackType
from repro.honeypots.deployment import HONEYPOT_NAMES
from repro.protocols.base import ProtocolId
from repro.telescope.telescope import PAPER_TELESCOPE

__all__ = [
    "format_table",
    "render_case_studies",
    "render_table4",
    "render_table5",
    "render_table6",
    "render_table7",
    "render_table8",
    "render_table10",
    "render_figure2",
    "render_figure7",
    "render_figure8",
    "render_figure9",
    "render_intersection",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Monospace table rendering used by every report."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[index]), *(len(row[index]) for row in text_rows))
        if text_rows
        else len(headers[index])
        for index in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def render_table4(results: StudyResults) -> str:
    """Exposed systems per protocol and source."""
    counts = results.table4_counts()
    order = [ProtocolId.AMQP, ProtocolId.XMPP, ProtocolId.COAP,
             ProtocolId.UPNP, ProtocolId.MQTT, ProtocolId.TELNET]
    rows = []
    for protocol in order:
        rows.append([
            str(protocol),
            counts.get("zmap", {}).get(protocol, 0),
            counts.get("sonar", {}).get(protocol, "NA"),
            counts.get("shodan", {}).get(protocol, 0),
        ])
    totals = [
        sum(v for v in counts.get(name, {}).values())
        for name in ("zmap", "sonar", "shodan")
    ]
    rows.append(["Total", *totals])
    return format_table(
        ["Protocol", "ZMap Scan", "Project Sonar", "Shodan"], rows,
        title="Table 4: exposed systems by protocol and source (scaled)",
    )


def render_table5(results: StudyResults) -> str:
    """Misconfigured devices per protocol/vulnerability."""
    assert results.misconfig is not None
    rows = list(results.misconfig.rows())
    rows.append(["", "Total", results.misconfig.total])
    return format_table(
        ["Protocol", "Vulnerability", "#Devices found"], rows,
        title="Table 5: misconfigured devices per protocol (scaled)",
    )


def render_table6(results: StudyResults) -> str:
    """Detected honeypots by product."""
    assert results.fingerprints is not None
    rows = [list(row) for row in results.fingerprints.rows()]
    rows.append(["Total", results.fingerprints.total])
    return format_table(
        ["Honeypot", "#Detected Instances"], rows,
        title="Table 6: honeypots detected via banner signatures (scaled)",
    )


def render_table7(results: StudyResults) -> str:
    """Attack events by honeypot and protocol, with source splits."""
    assert results.schedule is not None
    counts = results.schedule.log.count_by_honeypot_protocol()
    rows = []
    for honeypot in HONEYPOT_NAMES:
        protocols = sorted(
            (protocol, count)
            for (name, protocol), count in counts.items()
            if name == honeypot
        )
        scanning, malicious, unknown = results.honeypot_source_split(honeypot)
        first = True
        for protocol, count in protocols:
            rows.append([
                honeypot if first else "",
                protocol,
                count,
                scanning if first else "",
                malicious if first else "",
                unknown if first else "",
            ])
            first = False
    rows.append([
        "Total", "", len(results.schedule.log),
        sum(results.honeypot_source_split(h)[0] for h in HONEYPOT_NAMES),
        sum(results.honeypot_source_split(h)[1] for h in HONEYPOT_NAMES),
        sum(results.honeypot_source_split(h)[2] for h in HONEYPOT_NAMES),
    ])
    return format_table(
        ["Honeypot", "Protocol", "#Events", "Scanning*", "Malicious*",
         "Unknown*"],
        rows,
        title="Table 7: attack events by honeypot (scaled; * unique sources)",
    )


def render_table8(results: StudyResults) -> str:
    """Telescope suspicious-traffic classification."""
    assert results.telescope is not None
    capture = results.telescope
    rows = []
    for protocol in PAPER_TELESCOPE:
        scanning = len(capture.scanning_sources_by_protocol.get(protocol, set()))
        rows.append([
            str(protocol),
            f"{capture.daily_average_rescaled(protocol):,.0f}",
            len(capture.unique_sources(protocol)),
            scanning,
            len(capture.suspicious_sources(protocol)),
        ])
    return format_table(
        ["Protocol", "Daily Avg Count (rescaled)", "Unique IP",
         "Scanning-service", "Unknown/Suspicious"],
        rows,
        title="Table 8: telescope traffic classification (sources scaled)",
    )


def render_table10(results: StudyResults) -> str:
    """Misconfigured devices by country."""
    assert results.countries is not None and results.geo is not None
    rows = [
        [name, count, f"{percent:.1f}%"]
        for name, count, percent in results.countries.rows(results.geo)
    ]
    rows.append(["Total", results.countries.total, ""])
    return format_table(
        ["Country", "Count", "Share"], rows,
        title="Table 10: misconfigured devices by country (scaled)",
    )


def render_figure2(results: StudyResults, top_k: int = 5) -> str:
    """Top device types by protocol (%)."""
    assert results.device_types is not None
    rows = []
    for protocol in (ProtocolId.TELNET, ProtocolId.UPNP, ProtocolId.MQTT,
                     ProtocolId.COAP):
        percentages = results.device_types.percentages(protocol)
        top = sorted(percentages.items(), key=lambda item: -item[1])[:top_k]
        for device_type, percent in top:
            rows.append([str(protocol), device_type, f"{percent:.1f}%"])
    return format_table(
        ["Protocol", "Device type", "Share"], rows,
        title="Figure 2: top IoT device types by protocol",
    )


def render_figure7(results: StudyResults) -> str:
    """Attack trends by type and protocol (%)."""
    assert results.schedule is not None
    log = results.schedule.log
    protocols = sorted(log.count_by_protocol())
    rows = []
    for name in protocols:
        protocol = ProtocolId(name)
        counts = log.count_by_type(protocol)
        total = sum(counts.values()) or 1
        top = sorted(counts.items(), key=lambda item: -item[1])[:4]
        summary = ", ".join(
            f"{attack_type}={100.0 * count / total:.0f}%"
            for attack_type, count in top
        )
        rows.append([name, total, summary])
    return format_table(
        ["Protocol", "#Events", "Top attack types"], rows,
        title="Figure 7: attack trends by type and protocol",
    )


def render_figure8(results: StudyResults) -> str:
    """Attacks per day with listing markers."""
    assert results.schedule is not None and results.deployment is not None
    by_day = results.schedule.log.count_by_day()
    days = range(results.config.attacks.days)
    peak = max(by_day.values()) if by_day else 1
    listings: Dict[int, List[str]] = {}
    for honeypot in results.deployment.honeypots:
        for service, day in honeypot.listing_days.items():
            listings.setdefault(day, [])
            if service not in listings[day]:
                listings[day].append(service)
    lines = ["Figure 8: total attacks by day (scaled)"]
    for day in days:
        count = by_day.get(day, 0)
        bar = "#" * max(1, int(40 * count / peak)) if count else ""
        note = ""
        if day in listings:
            note = "  <- listed by " + ", ".join(listings[day])
        lines.append(f"day {day + 1:>2}  {count:>6}  {bar}{note}")
    return "\n".join(lines)


def render_figure9(results: StudyResults) -> str:
    """Multistage attacks: stage-wise protocol counts."""
    assert results.multistage is not None
    stages = results.multistage.stage_counts()
    rows = []
    for index, histogram in enumerate(stages):
        for protocol, count in sorted(histogram.items(), key=lambda i: -i[1]):
            rows.append([f"step {index + 1}", str(protocol), count])
    rows.append(["total", "multistage attacks", results.multistage.total])
    return format_table(
        ["Stage", "Protocol", "#Attacks"], rows,
        title="Figure 9: multistage attacks detected on honeypots (scaled)",
    )


def render_case_studies(results: StudyResults) -> str:
    """The §5.1 source-tracing case studies: DoS origins, duplicate-DNS
    reflection infrastructure, Tor-relay HTTP sources."""
    from repro.analysis.attack_origins import (
        analyze_tor_sources,
        dos_origin_countries,
        duplicate_dns_sources,
    )

    assert results.schedule is not None and results.geo is not None
    log = results.schedule.log
    rows = []
    for name, count in dos_origin_countries(log, results.geo, top_k=5):
        rows.append(["DoS origin country", name, count])
    groups = duplicate_dns_sources(log, results.schedule.rdns)
    rows.append(["duplicate-DNS source groups", "(reflection infra)",
                 len(groups)])
    if results.exonerator is not None:
        tor = analyze_tor_sources(log, results.exonerator)
        rows.append(["Tor-relay HTTP sources", "(§5.1.6)",
                     tor.unique_relays])
        rows.append(["  recurring relays", "daily pattern",
                     len(tor.recurring_relays)])
    return format_table(
        ["Case study", "Detail", "Value"], rows,
        title="Section 5.1 case studies (scaled)",
    )


def render_intersection(results: StudyResults) -> str:
    """Section 5.3's infected-host numbers."""
    assert results.infected is not None
    infected = results.infected
    rows = [
        ["misconfigured devices attacking (total)",
         infected.total_infected_misconfigured],
        ["  honeypots only", len(infected.honeypot_only)],
        ["  telescope only", len(infected.telescope_only)],
        ["  both", len(infected.both)],
        ["VirusTotal-flagged fraction",
         f"{infected.virustotal_flagged_fraction:.2f}"],
        ["Censys IoT extension (total)", infected.total_censys_extension],
        ["  honeypots only", infected.censys_honeypot_only],
        ["  telescope only", infected.censys_telescope_only],
        ["  both", infected.censys_both],
        ["registered domains", len(infected.registered_domains)],
        ["  with webpage", len(infected.domains_with_webpage)],
        ["  malicious URLs", len(infected.malicious_urls)],
    ]
    return format_table(
        ["Quantity", "Value"], rows,
        title="Section 5.3: attacks from infected hosts (scaled)",
    )
