"""Self-verifying artifact envelopes and corruption quarantine.

The resume path introduced with the per-task journal *trusts* every
pickle it finds on disk: a bit-flipped or truncated entry that still
unpickles would silently poison a "byte-identical" resumed campaign.
Long-running measurement archives treat that as a storage-integrity
problem, not a hope — CAIDA's telescope archives and the validated ZMap
pipelines detect damaged or stale artifacts instead of serving them.
This module is that discipline for the repro pipeline:

* :func:`wrap_envelope` / :func:`unwrap_envelope` — every journal entry
  and on-disk phase-cache entry is stored as a **checksummed envelope**:
  a magic string, a length-prefixed JSON header carrying the schema
  version, the artifact kind and key, the writing config's fingerprint
  and the SHA-256 of the payload, then the raw pickle payload.  A flip
  anywhere in the blob — header or payload — fails verification with a
  typed :class:`~repro.net.errors.EnvelopeError` naming the *reason*
  (``checksum-mismatch``, ``stale-schema``, ``key-mismatch``, …);

* :func:`quarantine_file` — a damaged or stale entry is never deleted
  and never re-read: it is moved aside into a ``quarantine/`` directory
  next to the store (renamed ``<key>.quarantined``, deduplicated, with a
  ``.reason.json`` sidecar) and described by a :class:`QuarantineRecord`
  that the readers surface into ``StudyMetrics``.  The caller then
  treats the entry as a miss and transparently recomputes — self-healing
  resume, proven deterministic by the ``store.corrupt`` fault site in
  :mod:`repro.core.faults`.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.errors import EnvelopeError

__all__ = [
    "ENVELOPE_MAGIC",
    "QuarantineRecord",
    "payload_sha256",
    "wrap_envelope",
    "unwrap_envelope",
    "quarantine_file",
]

#: Leading bytes of every envelope; doubles as the on-disk format version
#: (a future layout change bumps the trailing digit).
ENVELOPE_MAGIC = b"REPRO-ENVELOPE-1\n"

_HEADER_LEN = struct.Struct("!I")


def payload_sha256(payload: bytes) -> str:
    """Hex SHA-256 of an envelope payload (the stored checksum)."""
    return hashlib.sha256(payload).hexdigest()


def wrap_envelope(
    payload: bytes,
    *,
    schema: int,
    kind: str,
    key: str = "",
    fingerprint: str = "",
) -> bytes:
    """Seal ``payload`` (a pickle) into a self-verifying envelope.

    ``schema`` is the writer's layout version, ``kind`` the artifact
    family (``"journal"`` or ``"phase"``), ``key`` the entry identity the
    reader will demand back, and ``fingerprint`` the writing config's
    content hash — so a stale entry (old schema, foreign config, file
    landed under the wrong name) is rejected as firmly as a damaged one.
    """
    header = json.dumps(
        {
            "schema": schema,
            "kind": kind,
            "key": key,
            "fingerprint": fingerprint,
            "length": len(payload),
            "sha256": payload_sha256(payload),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return ENVELOPE_MAGIC + _HEADER_LEN.pack(len(header)) + header + payload


def unwrap_envelope(
    blob: bytes,
    *,
    schema: int,
    kind: str,
    key: str = "",
    fingerprint: str = "",
) -> bytes:
    """Verify an envelope and return its payload bytes.

    Raises :class:`~repro.net.errors.EnvelopeError` with a stable
    ``reason`` token on any damage or staleness; the caller is expected
    to quarantine the source file and treat the entry as a miss.
    """
    magic_end = len(ENVELOPE_MAGIC)
    if len(blob) < magic_end + _HEADER_LEN.size:
        raise EnvelopeError(
            f"envelope truncated at {len(blob)} bytes", reason="truncated"
        )
    if blob[:magic_end] != ENVELOPE_MAGIC:
        raise EnvelopeError(
            "not an artifact envelope (bad magic)", reason="bad-magic"
        )
    (header_len,) = _HEADER_LEN.unpack_from(blob, magic_end)
    header_end = magic_end + _HEADER_LEN.size + header_len
    if header_end > len(blob):
        raise EnvelopeError(
            "envelope header extends past the blob", reason="truncated"
        )
    try:
        header = json.loads(
            blob[magic_end + _HEADER_LEN.size:header_end].decode("utf-8")
        )
        if not isinstance(header, dict):
            raise ValueError("header is not an object")
    except (ValueError, UnicodeDecodeError) as error:
        raise EnvelopeError(
            f"envelope header unreadable: {error}", reason="malformed-header"
        ) from None
    if header.get("schema") != schema:
        raise EnvelopeError(
            f"envelope schema {header.get('schema')!r} != expected {schema}",
            reason="stale-schema",
        )
    if header.get("kind") != kind:
        raise EnvelopeError(
            f"envelope kind {header.get('kind')!r} != expected {kind!r}",
            reason="kind-mismatch",
        )
    if header.get("key") != key:
        raise EnvelopeError(
            f"envelope key {header.get('key')!r} != expected {key!r}",
            reason="key-mismatch",
        )
    if header.get("fingerprint") != fingerprint:
        raise EnvelopeError(
            "envelope written under a different config fingerprint",
            reason="stale-fingerprint",
        )
    payload = blob[header_end:]
    if header.get("length") != len(payload):
        raise EnvelopeError(
            f"payload length {len(payload)} != declared {header.get('length')!r}",
            reason="length-mismatch",
        )
    if payload_sha256(payload) != header.get("sha256"):
        raise EnvelopeError(
            "payload SHA-256 does not match the envelope checksum",
            reason="checksum-mismatch",
        )
    return payload


@dataclass(frozen=True)
class QuarantineRecord:
    """Why one stored entry was moved aside instead of being served."""

    #: Entry identity (task key or phase-cache key) the reader expected.
    key: str
    #: Stable :class:`~repro.net.errors.EnvelopeError` reason token, or
    #: ``"unpicklable"`` when the envelope verified but the payload did not
    #: unpickle.
    reason: str
    #: Which reader detected the damage (``journal.load``, ``phase.load``).
    stage: str
    #: Where the damaged file lived.
    source_path: str
    #: Where it lives now (``…/quarantine/<key>.quarantined``).
    quarantined_path: str

    def to_dict(self) -> Dict[str, str]:
        """JSON-ready form for metrics and the ``.reason.json`` sidecar."""
        return {
            "key": self.key,
            "reason": self.reason,
            "stage": self.stage,
            "source_path": self.source_path,
            "quarantined_path": self.quarantined_path,
        }


def quarantine_file(
    path: str, *, key: str, reason: str, stage: str, namespace: str = ""
) -> Optional[QuarantineRecord]:
    """Move a damaged entry into ``quarantine/`` beside its store.

    The file is *renamed*, never deleted, so operators can inspect what
    went wrong; it is never re-read because readers only open the
    canonical ``<key>.pkl`` name.  Repeated quarantines of the same key
    get deduplicated names (``<key>.2.quarantined``, …).  A
    ``.reason.json`` sidecar records the :class:`QuarantineRecord`.
    Best-effort: returns ``None`` when the move itself fails (the caller
    still treats the entry as a miss).

    ``namespace`` (a campaign id or config fingerprint) isolates tenants
    sharing one store: the serial-dedup scheme is *per directory*, so two
    campaigns quarantining same-named entries into one flat
    ``quarantine/`` would interleave serials and an operator could no
    longer tell whose damage is whose.  When set, the file lands in
    ``quarantine/<namespace>/`` instead; the default keeps the historical
    flat layout for single-tenant stores.
    """
    directory = os.path.join(os.path.dirname(path), "quarantine")
    if namespace:
        directory = os.path.join(directory, namespace)
    stem = os.path.basename(path)
    if stem.endswith(".pkl"):
        stem = stem[: -len(".pkl")]
    try:
        os.makedirs(directory, exist_ok=True)
        destination = os.path.join(directory, f"{stem}.quarantined")
        serial = 1
        while os.path.exists(destination):
            serial += 1
            destination = os.path.join(
                directory, f"{stem}.{serial}.quarantined"
            )
        os.replace(path, destination)
    except OSError:
        return None
    record = QuarantineRecord(
        key=key,
        reason=reason,
        stage=stage,
        source_path=path,
        quarantined_path=destination,
    )
    try:
        with open(f"{destination}.reason.json", "w") as handle:
            json.dump(record.to_dict(), handle, indent=2)
    except OSError:
        pass  # the quarantined file itself is the load-bearing part
    return record
