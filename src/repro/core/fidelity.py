"""Fidelity scoring: a study run vs the paper's published numbers.

``score_study`` walks every paper-anchored quantity the pipeline measures,
rescales the measured value back to paper units, and emits one
:class:`FidelityRow` per quantity with its relative deviation.  It is the
programmatic form of EXPERIMENTS.md: the regeneration script renders its
output, CI-style tests assert its aggregate, and users get a one-call
answer to "how close is my run to the paper?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.attacks.schedule import (
    PAPER_HONEYPOT_EVENTS,
    PAPER_HONEYPOT_SOURCES,
    PAPER_INFECTED_SPLIT,
    PAPER_MULTISTAGE_ATTACKS,
)
from repro.core.study import StudyResults
from repro.core.taxonomy import MISCONFIG_LABELS, Misconfig
from repro.internet.population import (
    PAPER_EXPOSED_ZMAP,
    PAPER_MISCONFIG_COUNTS,
)
from repro.internet.wild_honeypots import WILD_HONEYPOT_CATALOG
from repro.protocols.base import ProtocolId
from repro.telescope.telescope import PAPER_TELESCOPE

__all__ = ["FidelityRow", "FidelityReport", "score_study"]


@dataclass
class FidelityRow:
    """One compared quantity."""

    experiment: str     # "T4", "T5", ... the DESIGN.md experiment id
    quantity: str
    paper: float
    measured: float     # rescaled to paper units
    #: the paper count is below the scale divisor, so the min-count floor
    #: (not the pipeline) determined the measured value — excluded from
    #: aggregate error statistics by default.
    floor_dominated: bool = False

    @property
    def relative_error(self) -> float:
        """|measured - paper| / paper (0 for a zero-paper row)."""
        if self.paper == 0:
            return 0.0 if self.measured == 0 else float("inf")
        return abs(self.measured - self.paper) / self.paper


@dataclass
class FidelityReport:
    """All compared quantities plus aggregates."""

    rows: List[FidelityRow] = field(default_factory=list)

    def add(self, experiment: str, quantity: str, paper: float,
            measured: float, *, scale: float = 1.0) -> None:
        """Record one comparison; ``scale`` marks floor-dominated rows."""
        self.rows.append(FidelityRow(
            experiment, quantity, paper, measured,
            floor_dominated=0 < paper < scale,
        ))

    def for_experiment(self, experiment: str) -> List[FidelityRow]:
        """Rows of one experiment id."""
        return [row for row in self.rows if row.experiment == experiment]

    def worst(self, k: int = 5) -> List[FidelityRow]:
        """The k largest relative errors."""
        return sorted(self.rows, key=lambda row: -row.relative_error)[:k]

    def max_relative_error(
        self, experiment: Optional[str] = None, *,
        include_floor_dominated: bool = False,
    ) -> float:
        """Largest relative error, optionally within one experiment."""
        rows = self.for_experiment(experiment) if experiment else self.rows
        if not include_floor_dominated:
            rows = [row for row in rows if not row.floor_dominated]
        return max((row.relative_error for row in rows), default=0.0)

    def mean_relative_error(
        self, *, include_floor_dominated: bool = False
    ) -> float:
        """Mean relative error (floor-dominated rows excluded by default)."""
        rows = (self.rows if include_floor_dominated
                else [row for row in self.rows if not row.floor_dominated])
        if not rows:
            return 0.0
        return sum(row.relative_error for row in rows) / len(rows)

    def render(self) -> str:
        """Monospace table of every comparison."""
        lines = [
            f"{'exp':<5} {'quantity':<44} {'paper':>14} {'measured':>14} "
            f"{'err':>7}"
        ]
        for row in self.rows:
            note = " (floor)" if row.floor_dominated else ""
            lines.append(
                f"{row.experiment:<5} {row.quantity:<44.44} "
                f"{row.paper:>14,.0f} {row.measured:>14,.0f} "
                f"{100 * row.relative_error:>6.1f}%{note}"
            )
        lines.append(
            f"mean relative error: {100 * self.mean_relative_error():.2f}%"
        )
        return "\n".join(lines)


def score_study(results: StudyResults) -> FidelityReport:
    """Compare one finished run against every paper-anchored number."""
    report = FidelityReport()
    population_scale = results.config.population.scale
    honeypot_scale = results.config.population.honeypot_scale
    attack_scale = results.config.attacks.attack_scale

    # T4 — exposed hosts (ZMap column).
    if results.zmap_db is not None:
        counts = results.zmap_db.counts_by_protocol()
        for protocol, paper in PAPER_EXPOSED_ZMAP.items():
            report.add("T4", f"exposed {protocol}", paper,
                       counts.get(protocol, 0) * population_scale,
                       scale=population_scale)

    # T5 — misconfigured devices.
    if results.misconfig is not None:
        for label, paper in PAPER_MISCONFIG_COUNTS.items():
            report.add(
                "T5", f"{label}", paper,
                results.misconfig.count(label) * population_scale,
                scale=population_scale,
            )
        report.add("T5", "total misconfigured", 1_832_893,
                   results.misconfig.total * population_scale)

    # T6 — detected honeypots.
    if results.fingerprints is not None:
        for kind in WILD_HONEYPOT_CATALOG:
            report.add("T6", f"honeypot {kind.name}", kind.paper_count,
                       results.fingerprints.count(kind.name) * honeypot_scale,
                       scale=honeypot_scale)
        report.add("T6", "total honeypots", 8_192,
                   results.fingerprints.total * honeypot_scale)

    # T7 — attack events and source splits.
    if results.schedule is not None:
        counts = results.schedule.log.count_by_honeypot_protocol()
        for (name, protocol), paper in PAPER_HONEYPOT_EVENTS.items():
            if protocol == ProtocolId.MODBUS:
                continue  # fitted estimate, not a published row
            report.add(
                "T7", f"{name}/{protocol} events", paper,
                counts.get((name, str(protocol)), 0) * attack_scale,
                scale=attack_scale,
            )
        for name, split in PAPER_HONEYPOT_SOURCES.items():
            measured = results.honeypot_source_split(name)
            for label, paper, got in zip(
                ("scanning", "malicious", "unknown"), split, measured
            ):
                report.add("T7", f"{name} {label} sources", paper,
                           got * attack_scale, scale=attack_scale)

    # T8 — telescope daily volumes (packet scale is uniform).
    if results.telescope is not None:
        for protocol, (daily_avg, _, _) in PAPER_TELESCOPE.items():
            report.add(
                "T8", f"telescope {protocol} pkts/day", daily_avg,
                results.telescope.daily_average_rescaled(protocol),
            )

    # F9 — multistage attacks.
    if results.multistage is not None:
        report.add("F9", "multistage attacks", PAPER_MULTISTAGE_ATTACKS,
                   results.multistage.total * attack_scale,
                   scale=attack_scale)

    # §5.3 — the intersection.
    if results.infected is not None:
        infected = results.infected
        report.add("S5.3", "infected misconfigured total", 11_118,
                   infected.total_infected_misconfigured * attack_scale)
        for label, paper, got in (
            ("honeypots only", PAPER_INFECTED_SPLIT[0],
             len(infected.honeypot_only)),
            ("telescope only", PAPER_INFECTED_SPLIT[1],
             len(infected.telescope_only)),
            ("both", PAPER_INFECTED_SPLIT[2], len(infected.both)),
        ):
            report.add("S5.3", f"infected {label}", paper,
                       got * attack_scale, scale=attack_scale)
        report.add("S5.3", "censys extension", 1_671,
                   infected.total_censys_extension * attack_scale,
                   scale=attack_scale)
        report.add("S5.3", "registered domains", 797,
                   len(infected.registered_domains) * attack_scale,
                   scale=attack_scale)
    return report
