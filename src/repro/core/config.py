"""Top-level study configuration.

One :class:`StudyConfig` determines the entire reproduction: the world
(population scales), the scan, the attack month, the telescope, and the
intel stores all derive their seeds and scales from it.  Two studies built
from equal configs produce identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.attacks.schedule import AttackScheduleConfig
from repro.internet.population import PopulationConfig
from repro.net.errors import ConfigError
from repro.scanner.zmap import ScanConfig
from repro.telescope.telescope import TelescopeConfig

__all__ = ["StudyConfig"]


@dataclass
class StudyConfig:
    """Everything a full study run needs.

    ``seed`` is folded into every sub-config whose seed is left at the
    sentinel value, so a single integer pins the whole world.
    """

    seed: int = 7
    population: PopulationConfig = field(default_factory=PopulationConfig)
    scan: ScanConfig = field(default_factory=ScanConfig)
    attacks: AttackScheduleConfig = field(default_factory=AttackScheduleConfig)
    telescope: TelescopeConfig = field(default_factory=TelescopeConfig)
    #: Include the Project Sonar / Shodan dataset correlation stage.
    use_open_datasets: bool = True
    #: Apply the FireHOL-style Europe blocklist to our own ZMap scan.
    use_eu_blocklist: bool = False
    #: Run the active SSH fingerprinting pass (needed to find Kippo).
    active_fingerprinting: bool = True
    #: Capture honeypot sessions as pcap bytes (the tcpdump stand-in of
    #: §5.1; costs memory proportional to attack volume).
    capture_pcap: bool = False

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigError("seed must be non-negative")
        # Propagate the master seed into sub-configs still on defaults.
        for sub in (self.population, self.scan, self.attacks, self.telescope):
            if getattr(sub, "seed", None) == 7 and self.seed != 7:
                sub.seed = self.seed

    @classmethod
    def quick(cls, seed: int = 7) -> "StudyConfig":
        """A fast configuration for tests and examples (coarser scales)."""
        return cls(
            seed=seed,
            population=PopulationConfig(
                seed=seed, scale=8192, honeypot_scale=256
            ),
            attacks=AttackScheduleConfig(seed=seed, attack_scale=128),
            telescope=TelescopeConfig(
                seed=seed, telnet_source_scale=65_536, source_scale=512,
                packet_scale=131_072,
            ),
        )

    @classmethod
    def paper_scale(cls, seed: int = 7) -> "StudyConfig":
        """The default 'full' reproduction scales used in EXPERIMENTS.md."""
        return cls(seed=seed)
