"""Top-level study configuration.

One :class:`StudyConfig` determines the entire reproduction: the world
(population scales), the scan, the attack month, the telescope, and the
intel stores all derive their seeds and scales from it.  Two studies built
from equal configs produce identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.attacks.schedule import AttackScheduleConfig
from repro.core.columns import BACKENDS, _warn_deprecated
from repro.core.tasks import EXECUTORS
from repro.internet.population import PopulationConfig
from repro.net.compat import DATACLASS_KW_ONLY
from repro.net.errors import ConfigError
from repro.net.prng import DEFAULT_SEED
from repro.scanner.zmap import ScanConfig
from repro.telescope.telescope import TelescopeConfig

__all__ = ["StudyConfig"]


@dataclass(**DATACLASS_KW_ONLY)
class StudyConfig:
    """Everything a full study run needs (keyword-only on Python 3.10+).

    ``seed`` is folded into every sub-config whose seed is left at the
    ``None`` inherit-sentinel, so a single integer pins the whole world.
    Passing an explicit integer to a sub-config always wins — including
    an explicit ``7``, which older releases silently overwrote.

    Every config in the tree exposes ``validate()`` raising the typed
    :class:`~repro.net.errors.ConfigError` (the CLI's exit-code-2 path);
    construction validates automatically, and callers who mutate a config
    afterwards can re-validate explicitly.
    """

    seed: int = 7
    population: PopulationConfig = field(default_factory=PopulationConfig)
    scan: ScanConfig = field(default_factory=ScanConfig)
    attacks: AttackScheduleConfig = field(default_factory=AttackScheduleConfig)
    telescope: TelescopeConfig = field(default_factory=TelescopeConfig)
    #: Include the Project Sonar / Shodan dataset correlation stage.
    use_open_datasets: bool = True
    #: Apply the FireHOL-style Europe blocklist to our own ZMap scan.
    use_eu_blocklist: bool = False
    #: Run the active SSH fingerprinting pass (needed to find Kippo).
    active_fingerprinting: bool = True
    #: Capture honeypot sessions as pcap bytes (the tcpdump stand-in of
    #: §5.1; costs memory proportional to attack volume).
    capture_pcap: bool = False
    #: What a failing *optional* phase (sonar/shodan vantage, intel
    #: enrichment) does to the study: ``"abort"`` propagates the error,
    #: ``"degrade"`` records the phase as degraded (artifacts ``None``)
    #: and carries on.  Robustness knob — excluded from the config
    #: fingerprint, like ``workers``.
    fail_policy: str = field(default="abort", compare=False)
    #: Directory for per-task completion journals (crash-safe campaigns).
    #: ``None`` disables journaling.  Excluded from the fingerprint.
    journal_dir: Optional[str] = field(default=None, compare=False)
    #: Replay journaled task results from a previous interrupted run of
    #: this exact config (requires ``journal_dir``).  Excluded from the
    #: fingerprint: a resumed run is byte-identical to an uninterrupted
    #: one by construction.
    resume: bool = field(default=False, compare=False)
    #: Per-task wall-time supervision, as ``"SOFT"`` or ``"SOFT:HARD"``
    #: seconds (see :class:`~repro.core.tasks.TaskDeadline`): overrunning
    #: the soft deadline records a stall warning in ``StudyMetrics``,
    #: overrunning the hard deadline retries the task as a transient
    #: fault.  ``None`` disables supervision.  Excluded from the
    #: fingerprint: deadlines change scheduling, never output bytes.
    task_deadline: Optional[str] = field(default=None, compare=False)
    #: Column backend for the three plane stores: ``"python"``,
    #: ``"numpy"``, or ``"auto"`` (NumPy when importable).  Stamped over
    #: every sub-config left at the ``None`` inherit-sentinel.  Both
    #: backends produce byte-identical artifacts, so the knob is excluded
    #: from equality/fingerprints like the other deployment knobs.
    backend: str = field(default="auto", compare=False)
    #: Task executor for the three sharded planes: ``"thread"``,
    #: ``"process"`` (true multi-core; sidesteps the GIL), or ``"auto"``
    #: (process when more than one worker AND more than one core are
    #: available).  Stamped over every sub-config left at the ``None``
    #: inherit-sentinel.  All executors produce byte-identical artifacts,
    #: so the knob is excluded from equality/fingerprints.
    executor: str = field(default="auto", compare=False)
    #: Tenant namespace for quarantined store entries.  Campaigns sharing
    #: one content-addressed store (the orchestrator's dedup) each set
    #: this to their campaign id so quarantined files land under
    #: ``quarantine/<namespace>/`` and the serial-dedup stems of one
    #: tenant cannot collide with another's.  Excluded from the
    #: fingerprint: where damage is filed never changes output bytes —
    #: and including it would defeat cross-tenant cache sharing.
    quarantine_namespace: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        self.validate()
        # Propagate the master seed into sub-configs left at the inherit
        # sentinel.  The pre-1.1 rule overwrote any sub-seed equal to the
        # legacy default (7) whenever the master differed, so it could not
        # distinguish "left at default" from "explicitly 7"; warn callers
        # who would have been silently overridden under that rule.
        for sub in (self.population, self.scan, self.attacks, self.telescope):
            if getattr(sub, "seed", 0) is None:
                sub.seed = self.seed
            elif sub.seed == DEFAULT_SEED and self.seed != DEFAULT_SEED:
                _warn_deprecated(
                    f"explicit {type(sub).__name__}(seed={DEFAULT_SEED}) "
                    f"under master seed {self.seed} (earlier releases "
                    "overwrote it with the master seed; it is now kept "
                    "as-is)",
                    use="pass seed=None (the default) to inherit",
                    removal="2.0",
                    stacklevel=4,
                )
        # Same inherit rule for the column backend and the task executor.
        for sub in (self.scan, self.attacks, self.telescope):
            if getattr(sub, "backend", "") is None:
                sub.backend = self.backend
            if getattr(sub, "executor", "") is None:
                sub.executor = self.executor

    def validate(self) -> None:
        """Raise :class:`~repro.net.errors.ConfigError` on invalid knobs.

        Sub-configs validate themselves at construction; this re-checks
        them too, so a config mutated after construction (e.g. by CLI flag
        application) can be revalidated in one call.
        """
        if self.seed < 0:
            raise ConfigError("seed must be non-negative")
        if self.fail_policy not in ("abort", "degrade"):
            raise ConfigError(
                f"fail_policy must be 'abort' or 'degrade', "
                f"got {self.fail_policy!r}"
            )
        if self.resume and not self.journal_dir:
            raise ConfigError(
                "resume=True requires journal_dir (the per-task completion "
                "journal a resumed run replays)"
            )
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"backend must be one of {', '.join(BACKENDS)}; "
                f"got {self.backend!r}"
            )
        if self.executor not in EXECUTORS:
            raise ConfigError(
                f"executor must be one of {', '.join(EXECUTORS)}; "
                f"got {self.executor!r}"
            )
        if self.task_deadline is not None:
            # Parse for validation only; the engine builds fresh
            # supervisors per plane from the spec string.
            from repro.core.tasks import TaskDeadline

            TaskDeadline.parse(self.task_deadline)
        for sub in (self.population, self.scan, self.attacks, self.telescope):
            validate = getattr(sub, "validate", None)
            if validate is not None:
                validate()

    @classmethod
    def quick(cls, seed: int = 7) -> "StudyConfig":
        """A fast configuration for tests and examples (coarser scales)."""
        return cls(
            seed=seed,
            population=PopulationConfig(scale=8192, honeypot_scale=256),
            attacks=AttackScheduleConfig(attack_scale=128),
            telescope=TelescopeConfig(
                telnet_source_scale=65_536, source_scale=512,
                packet_scale=131_072,
            ),
        )

    @classmethod
    def paper_scale(cls, seed: int = 7) -> "StudyConfig":
        """The default 'full' reproduction scales used in EXPERIMENTS.md."""
        return cls(seed=seed)
