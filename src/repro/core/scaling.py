"""Scale-down arithmetic for reproducing the paper at laptop size.

The paper measures a 3.7-billion-address Internet; we reproduce it on a
world scaled by ``1:N``.  Naively dividing every published count by N and
truncating would erase small categories entirely (CoAP's 427 admin-access
devices vanish at 1:1024), which would silently drop table rows.  We instead
use **largest-remainder apportionment** (Hamilton's method): quotas are
``count / N``, every category gets ``floor(quota)``, and the leftover units
go to the largest fractional remainders — optionally with a floor of one so
every category stays represented.

This is the single place where paper counts meet the scale factor; every
population builder goes through :func:`apportion`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)

__all__ = ["apportion", "scale_count"]


def scale_count(count: int, scale: int) -> int:
    """Round-half-up scaling of one standalone count."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    return (count + scale // 2) // scale


def apportion(
    counts: Mapping[K, int],
    scale: int,
    *,
    min_count: int = 0,
    total_override: int = None,
) -> Dict[K, int]:
    """Scale a category → count table by ``1/scale``, preserving proportions.

    Parameters
    ----------
    counts:
        The paper's published counts per category.
    scale:
        The down-scaling divisor (N in 1:N).
    min_count:
        Floor applied to every category *after* apportionment; useful to keep
        rare-but-load-bearing categories (e.g. the 12 Hontel honeypots) in a
        scaled world.  The floor adds units rather than stealing them, so
        proportions of large categories are unaffected.
    total_override:
        Force the grand total to this value instead of
        ``round(sum(counts)/scale)``; used when a table's total is itself a
        published number that must survive rounding.

    Returns
    -------
    dict
        Scaled counts, in the same iteration order as ``counts``.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    keys = list(counts)
    raw_total = sum(counts.values())
    if total_override is not None:
        target_total = total_override
    else:
        target_total = (raw_total + scale // 2) // scale

    if raw_total == 0 or target_total <= 0:
        return {key: max(0, min_count) for key in keys}

    quotas = {key: counts[key] * target_total / raw_total for key in keys}
    scaled = {key: int(quotas[key]) for key in keys}
    assigned = sum(scaled.values())
    leftovers = target_total - assigned
    # Distribute remaining units by descending fractional part (stable
    # tie-break on the original ordering keeps the result deterministic).
    order = sorted(
        range(len(keys)),
        key=lambda index: (quotas[keys[index]] - scaled[keys[index]], -index),
        reverse=True,
    )
    for index in order[:leftovers]:
        scaled[keys[index]] += 1

    if min_count > 0:
        for key in keys:
            if counts[key] > 0 and scaled[key] < min_count:
                scaled[key] = min_count
    return scaled
