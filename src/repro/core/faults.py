"""Deterministic, seeded fault injection for the measurement pipeline.

Real campaigns of the paper's kind survive packet loss, rate-limited
peers, host churn and partial vantage failures; a pipeline that cannot
*reproduce* those failures cannot test its own recovery paths.  This
module is the failure mirror of :class:`~repro.internet.fabric.ProbeLossModel`:
whether a named injection **site** raises is a pure function of
``(seed, site, key, attempt)`` via :func:`~repro.net.prng.keyed_uniform` —
no shared stream, no draw-order coupling — so an injected failure schedule
is byte-reproducible under any worker count and any interleaving.

Injection sites (the :data:`FAULT_SITES` registry):

* ``task``           — supervised task execution (one check per attempt of
  every ``(plane, unit, day/shard)`` task in
  :func:`~repro.core.tasks.run_tasks`);
* ``cache.io``       — phase-cache and task-journal disk I/O, which must
  degrade to a miss / skipped write, never an error;
* ``store.corrupt``  — *mutates* rather than raises: deterministically
  bit-flips one byte of a journal/cache blob on write or read (via
  :func:`maybe_corrupt`), proving the integrity envelopes detect and
  quarantine storage damage;
* ``deadline``       — *delays* rather than raises: injects a configurable
  ``time.sleep`` into supervised tasks (via :func:`maybe_delay`), driving
  the soft/hard deadline supervision in :func:`~repro.core.tasks.run_tasks`;
* ``fabric.connect`` — the simulated Internet's connect/query primitives
  (an infrastructure fault, distinct from modelled probe loss);
* ``dataset.load``   — open-dataset snapshots and intel-store builds (the
  optional vantage points a degraded study may drop);
* ``worker.crash``   — *kills the process* rather than raises: the worker
  calls ``os._exit`` (via :func:`maybe_crash`), simulating a SIGKILL'd /
  OOM-killed pool worker.  Checked only inside process-pool workers, so
  the thread and serial executors never see it — which is exactly what
  lets the pool supervisor's downgrade ladder terminate;
* ``worker.hang``    — *delays* like ``deadline`` but is checked at the
  chunk level inside process-pool workers (default sleep
  :data:`DEFAULT_HANG_DELAY` seconds), driving the pool supervisor's
  no-progress watchdog in :func:`~repro.core.tasks.run_tasks`;
* ``ledger.io``      — the orchestrator's write-ahead ledger appends,
  which retry on a transient verdict (keyed per attempt) and surface a
  :class:`~repro.net.errors.LedgerError` once the bounded retry loop is
  exhausted — durability must fail loudly, never drop a record;
* ``lease.expire``   — the orchestrator's heartbeat: a firing verdict
  (keyed per campaign *lease incarnation*, so one verdict per lease, not
  per heartbeat) suppresses renewal and the monitor expires the lease,
  driving the requeue → resume-from-journals recovery path.

A fault is **transient** (cleared by a supervised retry: the attempt
number advances the key, so the retry draws a fresh verdict) or **fatal**
(raised every attempt; ends the task).  Nothing fires unless an injector
is :func:`install`-ed — production runs pay one ``None`` check per site.

Specs (the CLI's ``--inject-faults``) are comma-separated
``site[@plane]:rate[:kind][:delay]`` entries — ``kind`` is ``transient``
or ``fatal``, and ``delay`` (seconds, only meaningful for ``deadline`` /
``worker.hang``) may also stand alone in the third slot since a bare
number is unambiguous.  An ``@plane`` suffix scopes the rule to keys
whose first component equals ``plane`` (useful for aiming worker faults
at one measurement plane)::

    task:0.2,fabric.connect:0.05:transient,store.corrupt:0.3,deadline:0.5:0.25
    worker.crash@attacks:0.1,worker.hang@telescope:0.02:20
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

from repro.net.errors import (
    ConfigError,
    FatalFaultError,
    FaultError,
    TransientFaultError,
)
from repro.net.prng import keyed_uniform

__all__ = [
    "FAULT_SITES",
    "FAULT_KINDS",
    "DEFAULT_DEADLINE_DELAY",
    "DEFAULT_HANG_DELAY",
    "WORKER_CRASH_EXIT",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "active",
    "install",
    "uninstall",
    "injected",
    "maybe_fail",
    "maybe_corrupt",
    "maybe_delay",
    "maybe_crash",
    "task_attempt",
]

#: The named injection sites the codebase is instrumented with.
FAULT_SITES: Tuple[str, ...] = (
    "task", "cache.io", "store.corrupt", "deadline",
    "fabric.connect", "dataset.load", "worker.crash", "worker.hang",
    "ledger.io", "lease.expire",
)

#: Recognized fault kinds.
FAULT_KINDS: Tuple[str, ...] = ("transient", "fatal")

#: Injected task delay (seconds) when a ``deadline`` rule omits one.
DEFAULT_DEADLINE_DELAY = 0.05

#: Injected worker sleep (seconds) when a ``worker.hang`` rule omits one
#: — long enough to trip any sanely configured pool watchdog.
DEFAULT_HANG_DELAY = 30.0

#: Exit status a ``worker.crash`` verdict kills the worker process with
#: (visible to the parent as abrupt worker death, like a SIGKILL/OOM).
WORKER_CRASH_EXIT = 70


@dataclass(frozen=True)
class FaultRule:
    """One site's failure law: fire with ``rate`` probability per check."""

    site: str
    rate: float
    kind: str = "transient"
    #: Injected sleep in seconds when this rule fires at a delaying site
    #: (``deadline`` / ``worker.hang``); ignored by raising, corrupting
    #: and crashing sites.
    delay: float = 0.0
    #: Optional key scope: when set, the rule only fires for checks whose
    #: first key component equals this value (the plane name for task and
    #: worker sites).  Parsed from the ``site@plane`` spec spelling.
    plane: str = ""

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ConfigError(
                f"unknown fault site {self.site!r}; "
                f"expected one of {FAULT_SITES}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(
                f"fault rate must be in [0, 1], got {self.rate}"
            )
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.delay < 0.0:
            raise ConfigError(
                f"fault delay must be >= 0 seconds, got {self.delay}"
            )
        if self.site == "deadline" and self.delay == 0.0:
            object.__setattr__(self, "delay", DEFAULT_DEADLINE_DELAY)
        if self.site == "worker.hang" and self.delay == 0.0:
            object.__setattr__(self, "delay", DEFAULT_HANG_DELAY)


class FaultPlan:
    """A seeded set of :class:`FaultRule` entries, one per site at most."""

    def __init__(self, rules: Iterable[FaultRule], seed: int = 0) -> None:
        self.seed = seed
        self.rules: Dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site in self.rules:
                raise ConfigError(
                    f"fault site {rule.site!r} specified twice"
                )
            self.rules[rule.site] = rule

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a ``site[@plane]:rate[:kind][:delay]`` comma list.

        The third token is a kind (``transient``/``fatal``) or, since a
        bare number is unambiguous, a delay in seconds; with four tokens
        the order is fixed as ``site:rate:kind:delay``.  An ``@plane``
        suffix on the site scopes the rule to keys whose first component
        equals ``plane``.  Every rejection is a
        :class:`~repro.net.errors.ConfigError` naming the offending
        token, the entry it sits in, and — for site typos — the full list
        of valid sites.
        """
        rules = []
        for chunk in filter(None, (c.strip() for c in spec.split(","))):
            parts = chunk.split(":")
            if not 2 <= len(parts) <= 4:
                raise ConfigError(
                    f"bad fault entry {chunk!r}: expected "
                    "site[@plane]:rate[:transient|fatal][:delay-seconds], "
                    f"got {len(parts)} token(s); valid sites: "
                    f"{', '.join(FAULT_SITES)}"
                )
            site, _, plane = parts[0].partition("@")
            if site not in FAULT_SITES:
                raise ConfigError(
                    f"unknown fault site {site!r} in entry {chunk!r}; "
                    f"valid sites: {', '.join(FAULT_SITES)}"
                )
            try:
                rate = float(parts[1])
            except ValueError:
                raise ConfigError(
                    f"fault rate {parts[1]!r} in entry {chunk!r} is not "
                    "a number; expected a probability in [0, 1]"
                ) from None
            kind = "transient"
            delay = 0.0
            if len(parts) == 4:
                if parts[2] not in FAULT_KINDS:
                    raise ConfigError(
                        f"fault kind {parts[2]!r} in entry {chunk!r} is "
                        f"not one of {', '.join(FAULT_KINDS)}"
                    )
                kind = parts[2]
                try:
                    delay = float(parts[3])
                except ValueError:
                    raise ConfigError(
                        f"fault delay {parts[3]!r} in entry {chunk!r} is "
                        "not a number; expected seconds"
                    ) from None
            elif len(parts) == 3:
                if parts[2] in FAULT_KINDS:
                    kind = parts[2]
                else:
                    try:
                        delay = float(parts[2])
                    except ValueError:
                        raise ConfigError(
                            f"token {parts[2]!r} in entry {chunk!r} is "
                            "neither a fault kind "
                            f"({', '.join(FAULT_KINDS)}) nor a "
                            "delay in seconds"
                        ) from None
            rules.append(FaultRule(
                site=site, rate=rate, kind=kind, delay=delay, plane=plane,
            ))
        if not rules:
            raise ConfigError(
                f"empty fault spec {spec!r}; expected comma-separated "
                "site[@plane]:rate[:kind][:delay] entries; valid sites: "
                f"{', '.join(FAULT_SITES)}"
            )
        return cls(rules, seed=seed)

    def describe(self) -> str:
        """One-line human description for logs."""
        return ", ".join(
            f"{rule.site}"
            + (f"@{rule.plane}" if rule.plane else "")
            + f":{rule.rate:g}:{rule.kind}"
            + (f":{rule.delay:g}s" if rule.delay > 0.0 else "")
            for rule in self.rules.values()
        )


# Thread-local supervised-attempt context: run_tasks sets the current
# attempt number around each task attempt, so every keyed verdict drawn
# inside the task (fabric.connect included) folds the attempt in and a
# retry sees a fresh, independent failure schedule.
_context = threading.local()


@contextmanager
def task_attempt(attempt: int) -> Iterator[None]:
    """Scope the current supervised-task attempt number (thread-local)."""
    previous = getattr(_context, "attempt", 0)
    _context.attempt = attempt
    try:
        yield
    finally:
        _context.attempt = previous


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at injection sites, statelessly."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def would_fail(self, site: str, *key) -> Optional[FaultRule]:
        """The rule that fires for this ``(site, key, attempt)``, if any."""
        rule = self.plan.rules.get(site)
        if rule is None or rule.rate <= 0.0:
            return None
        if rule.plane and (not key or key[0] != rule.plane):
            return None  # rule is scoped to another plane's keys
        attempt = getattr(_context, "attempt", 0)
        draw = keyed_uniform(
            self.plan.seed, f"fault.{site}", *key, attempt
        )
        return rule if draw < rule.rate else None

    def check(self, site: str, *key) -> None:
        """Raise the site's typed fault when its seeded verdict fires."""
        rule = self.would_fail(site, *key)
        if rule is None:
            return
        error = (TransientFaultError if rule.kind == "transient"
                 else FatalFaultError)
        raise error(
            f"injected {rule.kind} fault at {site} "
            f"(key={key!r}, rate={rule.rate:g})",
            site=site, key=key,
        )

    def corrupt_bytes(self, data: bytes, *key) -> bytes:
        """Bit-flip one byte of ``data`` when ``store.corrupt`` fires.

        Both the fire/no-fire verdict and the flipped position are pure
        functions of ``(seed, key, attempt)``, so a corruption schedule is
        byte-reproducible under any worker count — the same discipline as
        every other injected fault.  Empty blobs pass through untouched.
        """
        if not data or self.would_fail("store.corrupt", *key) is None:
            return data
        attempt = getattr(_context, "attempt", 0)
        position = int(
            keyed_uniform(
                self.plan.seed, "fault.store.corrupt.position", *key, attempt
            ) * len(data)
        ) % len(data)
        bit = int(
            keyed_uniform(
                self.plan.seed, "fault.store.corrupt.bit", *key, attempt
            ) * 8
        ) % 8
        damaged = bytearray(data)
        damaged[position] ^= 1 << bit
        return bytes(damaged)

    def delay_seconds(self, site: str, *key) -> float:
        """The injected sleep for this ``(site, key, attempt)``, or 0."""
        rule = self.would_fail(site, *key)
        return rule.delay if rule is not None else 0.0


_active: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    """The currently installed injector, if any."""
    return _active


def install(plan: Union[FaultPlan, FaultInjector]) -> FaultInjector:
    """Install an injector process-wide; returns it (for uninstall)."""
    global _active
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    _active = injector
    return injector


def uninstall() -> None:
    """Remove the installed injector (no-op when none is installed)."""
    global _active
    _active = None


@contextmanager
def injected(plan: Union[FaultPlan, FaultInjector]) -> Iterator[FaultInjector]:
    """Scoped installation for tests: install on entry, restore on exit."""
    global _active
    previous = _active
    injector = install(plan)
    try:
        yield injector
    finally:
        _active = previous


def maybe_fail(site: str, *key) -> None:
    """The one-line site hook: no-op unless an injector is installed."""
    injector = _active
    if injector is not None:
        injector.check(site, *key)


def maybe_corrupt(data: bytes, *key) -> bytes:
    """The ``store.corrupt`` hook: identity unless an injector fires."""
    injector = _active
    if injector is not None:
        return injector.corrupt_bytes(data, *key)
    return data


def maybe_delay(site: str, *key) -> None:
    """The delaying-site hook: sleeps when the seeded verdict fires."""
    injector = _active
    if injector is not None:
        seconds = injector.delay_seconds(site, *key)
        if seconds > 0.0:
            time.sleep(seconds)


def maybe_crash(*key) -> None:
    """The ``worker.crash`` hook: kill this process when the verdict fires.

    Calls ``os._exit`` — no cleanup, no exception, exactly how a
    SIGKILL'd or OOM-killed pool worker disappears.  Only ever called
    from sacrificial process-pool workers
    (:func:`repro.core.tasks._process_chunk`); the verdict is pure in
    ``(seed, key)`` like every other site, so which tasks take their
    worker down is byte-reproducible.
    """
    injector = _active
    if injector is not None and injector.would_fail(
        "worker.crash", *key
    ) is not None:
        os._exit(WORKER_CRASH_EXIT)
