"""Shared vocabulary: misconfiguration classes, device types, attack types.

These enums are the ground-truth labels the population builder plants and —
independently — the labels the analysis pipeline infers from observed bytes.
Tests compare the two to measure classifier fidelity; the pipeline itself
never reads ground truth.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.protocols.base import ProtocolId

__all__ = ["Misconfig", "MISCONFIG_LABELS", "MISCONFIG_PROTOCOL", "AttackType", "TrafficClass"]


class Misconfig(str, enum.Enum):
    """Misconfiguration classes of Table 5 (plus NONE for healthy hosts)."""

    NONE = "none"
    TELNET_NO_AUTH = "telnet-no-auth"
    TELNET_NO_AUTH_ROOT = "telnet-no-auth-root"
    MQTT_NO_AUTH = "mqtt-no-auth"
    AMQP_NO_AUTH = "amqp-no-auth"
    XMPP_NO_ENCRYPTION = "xmpp-no-encryption"
    XMPP_ANONYMOUS = "xmpp-anonymous"
    COAP_NO_AUTH_ADMIN = "coap-no-auth-admin"
    COAP_NO_AUTH = "coap-no-auth"
    COAP_REFLECTOR = "coap-reflector"
    UPNP_REFLECTOR = "upnp-reflector"
    # Extension protocols (§6 future work) — not part of Table 5.
    TR069_NO_AUTH = "tr069-no-auth"
    DDS_OPEN_DISCOVERY = "dds-open-discovery"
    OPCUA_NO_SECURITY = "opcua-no-security"

    def __str__(self) -> str:
        return self.value


#: Human-readable vulnerability labels exactly as Table 5 prints them.
MISCONFIG_LABELS: Dict[Misconfig, str] = {
    Misconfig.COAP_NO_AUTH_ADMIN: "No auth, admin access",
    Misconfig.AMQP_NO_AUTH: "No auth",
    Misconfig.TELNET_NO_AUTH: "No auth",
    Misconfig.XMPP_NO_ENCRYPTION: "No encryption",
    Misconfig.COAP_NO_AUTH: "No auth",
    Misconfig.TELNET_NO_AUTH_ROOT: "No auth, root access",
    Misconfig.MQTT_NO_AUTH: "No auth",
    Misconfig.XMPP_ANONYMOUS: "Anonymous login",
    Misconfig.COAP_REFLECTOR: "Reflection-attack resource",
    Misconfig.UPNP_REFLECTOR: "Reflection-attack resource",
    Misconfig.TR069_NO_AUTH: "No auth, ACS connection request",
    Misconfig.DDS_OPEN_DISCOVERY: "Open participant discovery",
    Misconfig.OPCUA_NO_SECURITY: "SecurityPolicy None endpoint",
}

#: Which scanned protocol each misconfiguration class belongs to.
MISCONFIG_PROTOCOL: Dict[Misconfig, ProtocolId] = {
    Misconfig.TELNET_NO_AUTH: ProtocolId.TELNET,
    Misconfig.TELNET_NO_AUTH_ROOT: ProtocolId.TELNET,
    Misconfig.MQTT_NO_AUTH: ProtocolId.MQTT,
    Misconfig.AMQP_NO_AUTH: ProtocolId.AMQP,
    Misconfig.XMPP_NO_ENCRYPTION: ProtocolId.XMPP,
    Misconfig.XMPP_ANONYMOUS: ProtocolId.XMPP,
    Misconfig.COAP_NO_AUTH_ADMIN: ProtocolId.COAP,
    Misconfig.COAP_NO_AUTH: ProtocolId.COAP,
    Misconfig.COAP_REFLECTOR: ProtocolId.COAP,
    Misconfig.UPNP_REFLECTOR: ProtocolId.UPNP,
    Misconfig.TR069_NO_AUTH: ProtocolId.TR069,
    Misconfig.DDS_OPEN_DISCOVERY: ProtocolId.DDS,
    Misconfig.OPCUA_NO_SECURITY: ProtocolId.OPCUA,
}


class AttackType(str, enum.Enum):
    """Attack-type taxonomy used in Figures 4 and 7."""

    SCANNING = "scanning"
    BRUTE_FORCE = "brute-force"
    DICTIONARY = "dictionary"
    MALWARE_DROP = "malware-drop"
    DATA_POISONING = "data-poisoning"
    DOS_FLOOD = "dos-flood"
    REFLECTION = "reflection"
    EXPLOIT = "exploit"
    WEB_SCRAPING = "web-scraping"
    DISCOVERY = "discovery"

    def __str__(self) -> str:
        return self.value


class TrafficClass(str, enum.Enum):
    """Source classification of Table 7 / Table 8."""

    SCANNING_SERVICE = "scanning-service"
    MALICIOUS = "malicious"
    UNKNOWN = "unknown-suspicious"

    def __str__(self) -> str:
        return self.value
