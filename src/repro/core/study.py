"""The full study pipeline — every experiment of the paper, in order.

:class:`Study` chains the phases exactly as the methodology section lays
them out:

1. **world** — build the scaled population (devices + wild honeypots);
2. **scan** — our ZMap/ZGrab campaign over six protocols, optionally behind
   the Europe blocklist; Project Sonar and Shodan snapshots; dataset merge;
3. **fingerprint** — banner-based honeypot detection plus the active SSH
   pass; filter the detections out of the scan results;
4. **classify** — misconfiguration report (Table 5), device types
   (Figure 2), country rollup (Table 10);
5. **deploy & attack** — the six lab honeypots face one month of generated
   attacks (Tables 7, Figures 3/4/7/8/9);
6. **telescope** — the /8 darknet capture (Table 8);
7. **intel** — GreyNoise/VirusTotal/Censys/ExoneraTor stores built over the
   actor ledger;
8. **join** — suspicious-traffic classification (Figures 5/6), multistage
   detection (Figure 9), and the infected-host intersection (§5.3).

Each phase's output lands on :class:`StudyResults`; `run()` executes all of
them, while the per-phase methods allow partial pipelines (the benchmarks
use those to time one experiment at a time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.country import CountryReport, country_distribution
from repro.analysis.device_type import DeviceTypeReport, identify_device_types
from repro.analysis.fingerprint import FingerprintReport, HoneypotFingerprinter
from repro.analysis.infected import InfectedHostsReport, analyze_infected_hosts
from repro.analysis.misconfig import MisconfigReport, classify_database
from repro.analysis.multistage import MultistageReport, detect_multistage
from repro.attacks.schedule import AttackScheduler, ScheduleResult
from repro.core.config import StudyConfig
from repro.core.taxonomy import TrafficClass
from repro.honeypots.deployment import build_deployment
from repro.honeypots.base import HoneypotDeployment
from repro.intel.censysiot import CensysIotDB
from repro.intel.exonerator import ExoneraTorDB
from repro.intel.greynoise import GreyNoiseDB
from repro.intel.virustotal import VirusTotalDB
from repro.internet.population import Population, PopulationBuilder
from repro.net.asn import AsnRegistry
from repro.net.geo import GeoRegistry
from repro.protocols.base import ProtocolId
from repro.scanner.blocklist import (
    EU_COUNTRIES,
    CompositeBlocklist,
    GeoBlocklist,
    zmap_default_blocklist,
)
from repro.scanner.datasets import project_sonar, shodan
from repro.scanner.records import ScanDatabase
from repro.scanner.zmap import InternetScanner
from repro.telescope.telescope import NetworkTelescope, TelescopeCapture

__all__ = ["StudyResults", "Study"]


@dataclass
class StudyResults:
    """Everything a full run produces, keyed to the paper's artifacts."""

    config: StudyConfig
    population: Optional[Population] = None
    geo: Optional[GeoRegistry] = None
    asn: Optional[AsnRegistry] = None
    # scan phase
    zmap_db: Optional[ScanDatabase] = None
    sonar_db: Optional[ScanDatabase] = None
    shodan_db: Optional[ScanDatabase] = None
    merged_db: Optional[ScanDatabase] = None
    # fingerprint phase (Table 6)
    fingerprints: Optional[FingerprintReport] = None
    # classification phase (Tables 5/10, Figure 2)
    misconfig: Optional[MisconfigReport] = None
    device_types: Optional[DeviceTypeReport] = None
    countries: Optional[CountryReport] = None
    # attack phase (Table 7, Figures 3/4/7/8)
    deployment: Optional[HoneypotDeployment] = None
    schedule: Optional[ScheduleResult] = None
    # telescope phase (Table 8)
    telescope: Optional[TelescopeCapture] = None
    # intel stores
    greynoise: Optional[GreyNoiseDB] = None
    virustotal: Optional[VirusTotalDB] = None
    censys_iot: Optional[CensysIotDB] = None
    exonerator: Optional[ExoneraTorDB] = None
    # joins (Figures 5/6/9, §5.3)
    multistage: Optional[MultistageReport] = None
    infected: Optional[InfectedHostsReport] = None
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    # -- derived views used by reports and benches -------------------------

    def table4_counts(self) -> Dict[str, Dict[ProtocolId, int]]:
        """Exposed hosts per protocol per source — Table 4."""
        result: Dict[str, Dict[ProtocolId, int]] = {}
        for name, database in (
            ("zmap", self.zmap_db),
            ("sonar", self.sonar_db),
            ("shodan", self.shodan_db),
        ):
            if database is not None:
                result[name] = database.counts_by_protocol()
        return result

    def honeypot_source_split(self, honeypot: str) -> Tuple[int, int, int]:
        """(scanning, malicious, unknown) unique sources for one honeypot —
        Table 7's last columns, computed via rDNS like the paper did."""
        assert self.schedule is not None
        sources = self.schedule.log.unique_sources(honeypot=honeypot)
        scanning = malicious = unknown = 0
        for address in sources:
            info = self.schedule.registry.get(address)
            if info is None:
                unknown += 1
            elif info.traffic_class == TrafficClass.SCANNING_SERVICE:
                scanning += 1
            elif info.traffic_class == TrafficClass.MALICIOUS:
                malicious += 1
            else:
                unknown += 1
        return scanning, malicious, unknown


class Study:
    """Pipeline driver."""

    def __init__(self, config: Optional[StudyConfig] = None) -> None:
        self.config = config or StudyConfig()
        self.results = StudyResults(config=self.config)

    # -- phases -----------------------------------------------------------

    def _timed(self, name: str, start: float) -> None:
        self.results.phase_seconds[name] = time.perf_counter() - start

    def build_world(self) -> Population:
        """Phase 1: the scaled Internet."""
        start = time.perf_counter()
        population = PopulationBuilder(self.config.population).build()
        self.results.population = population
        self.results.geo = GeoRegistry(self.config.seed)
        self.results.asn = AsnRegistry(self.config.seed)
        self._timed("world", start)
        return population

    def run_scans(self) -> ScanDatabase:
        """Phase 2: our campaign plus open datasets, merged."""
        assert self.results.population is not None, "build_world first"
        start = time.perf_counter()
        internet = self.results.population.internet
        blocklist = zmap_default_blocklist()
        if self.config.use_eu_blocklist:
            assert self.results.geo is not None
            blocklist = CompositeBlocklist(
                [blocklist, GeoBlocklist(self.results.geo, EU_COUNTRIES)]
            )
        scanner = InternetScanner(internet, self.config.scan, blocklist)
        self.results.zmap_db = scanner.run_campaign()
        merged = self.results.zmap_db
        if self.config.use_open_datasets:
            self.results.sonar_db = project_sonar(self.config.seed).snapshot(internet)
            self.results.shodan_db = shodan(self.config.seed).snapshot(internet)
            merged = merged.merge(self.results.sonar_db).merge(self.results.shodan_db)
        self.results.merged_db = merged
        self._timed("scan", start)
        return merged

    def run_fingerprinting(self) -> FingerprintReport:
        """Phase 3: find honeypots hiding in the scan results."""
        assert self.results.merged_db is not None, "run_scans first"
        start = time.perf_counter()
        fingerprinter = HoneypotFingerprinter()
        report = fingerprinter.fingerprint(self.results.merged_db)
        if self.config.active_fingerprinting:
            assert self.results.population is not None
            report = fingerprinter.active_ssh_probe(
                self.results.population.internet,
                (host.address for host in self.results.population.internet.hosts()),
                report=report,
            )
        self.results.fingerprints = report
        self._timed("fingerprint", start)
        return report

    def run_classification(self) -> MisconfigReport:
        """Phase 4: misconfigurations, device types, countries."""
        assert self.results.merged_db is not None, "run_scans first"
        assert self.results.fingerprints is not None, "run_fingerprinting first"
        start = time.perf_counter()
        self.results.misconfig = classify_database(
            self.results.merged_db,
            exclude_addresses=self.results.fingerprints.addresses(),
        )
        self.results.device_types = identify_device_types(self.results.merged_db)
        assert self.results.geo is not None
        self.results.countries = country_distribution(
            self.results.misconfig.all_addresses(), self.results.geo
        )
        self._timed("classify", start)
        return self.results.misconfig

    def run_attacks(self) -> ScheduleResult:
        """Phase 5: deploy the lab and simulate the month."""
        assert self.results.population is not None, "build_world first"
        start = time.perf_counter()
        deployment = build_deployment()
        if self.config.capture_pcap:
            for honeypot in deployment.honeypots:
                honeypot.enable_pcap()
        deployment.attach(self.results.population.internet)
        scheduler = AttackScheduler(
            self.results.population.internet,
            deployment,
            self.results.population,
            self.config.attacks,
        )
        self.results.deployment = deployment
        self.results.schedule = scheduler.run()
        self._timed("attacks", start)
        return self.results.schedule

    def run_telescope(self) -> TelescopeCapture:
        """Phase 6: the darknet capture."""
        assert self.results.schedule is not None, "run_attacks first"
        assert self.results.geo is not None and self.results.asn is not None
        start = time.perf_counter()
        telescope = NetworkTelescope(
            self.results.schedule.registry,
            self.results.geo,
            self.results.asn,
            self.config.telescope,
        )
        self.results.telescope = telescope.capture_month()
        self._timed("telescope", start)
        return self.results.telescope

    def build_intel(self) -> None:
        """Phase 7: populate the threat-intelligence stores."""
        assert self.results.schedule is not None, "run_attacks first"
        assert self.results.population is not None
        start = time.perf_counter()
        schedule = self.results.schedule
        self.results.greynoise = GreyNoiseDB.build_from(
            schedule.registry, self.config.seed
        )
        self.results.virustotal = VirusTotalDB.build_from(
            schedule.registry, schedule.corpus, schedule.rdns, self.config.seed
        )
        self.results.censys_iot = CensysIotDB.build_from(
            self.results.population, self.config.seed
        )
        self.results.exonerator = ExoneraTorDB.build_from(schedule.registry)
        self._timed("intel", start)

    def run_joins(self) -> InfectedHostsReport:
        """Phase 8: the cross-experiment analyses."""
        results = self.results
        assert results.schedule is not None and results.telescope is not None
        assert results.misconfig is not None and results.virustotal is not None
        start = time.perf_counter()
        results.multistage = detect_multistage(
            results.schedule.log, results.schedule.rdns
        )
        results.infected = analyze_infected_hosts(
            results.misconfig.all_addresses(),
            results.schedule.log,
            results.telescope,
            results.virustotal,
            censys=results.censys_iot,
            rdns=results.schedule.rdns,
        )
        self._timed("joins", start)
        return results.infected

    # -- the whole paper ----------------------------------------------------

    def run(self) -> StudyResults:
        """Execute every phase in order and return the results."""
        self.build_world()
        self.run_scans()
        self.run_fingerprinting()
        self.run_classification()
        self.run_attacks()
        self.run_telescope()
        self.build_intel()
        self.run_joins()
        return self.results
