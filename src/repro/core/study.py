"""The full study pipeline — every experiment of the paper, in order.

:class:`Study` is a thin facade over the phase-DAG engine
(:mod:`repro.core.engine`).  The phases match the methodology section:

1. **world** — build the scaled population (devices + wild honeypots);
2. **scan** — our ZMap/ZGrab campaign over six protocols, optionally behind
   the Europe blocklist; Project Sonar and Shodan snapshots; dataset merge;
3. **fingerprint** — banner-based honeypot detection plus the active SSH
   pass; filter the detections out of the scan results;
4. **classify** — misconfiguration report (Table 5), device types
   (Figure 2), country rollup (Table 10);
5. **deploy & attack** — the six lab honeypots face one month of generated
   attacks (Tables 7, Figures 3/4/7/8/9);
6. **telescope** — the /8 darknet capture (Table 8);
7. **intel** — GreyNoise/VirusTotal/Censys/ExoneraTor stores built over the
   actor ledger;
8. **join** — suspicious-traffic classification (Figures 5/6), multistage
   detection (Figure 9), and the infected-host intersection (§5.3).

Where the old driver enforced ordering with ``assert``-guard chains, the
facade now *auto-resolves* prerequisites: ``Study(cfg).run_classification()``
builds the world and runs the scans on its own.  Construct with
``auto_resolve=False`` to get the strict behaviour back as a typed
:class:`~repro.net.errors.PhaseOrderError` (asserts would vanish under
``python -O``).  Phase artifacts are memoized through the engine's shared
:class:`~repro.core.engine.PhaseCache`, so a second study with an equal
config replays the expensive world/scan phases from cache; pass
``cache=False`` to opt out, or ``executor="thread"`` to fan independent
branches out over a thread pool (same seed ⇒ byte-identical tables either
way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.analysis.country import CountryReport
from repro.analysis.device_type import DeviceTypeReport
from repro.analysis.fingerprint import FingerprintReport
from repro.analysis.infected import InfectedHostsReport
from repro.analysis.misconfig import MisconfigReport
from repro.analysis.multistage import MultistageReport
from repro.attacks.schedule import ScheduleResult
from repro.core.config import StudyConfig
from repro.core.engine import (
    PhaseCache,
    SerialExecutor,
    StudyEngine,
    ThreadedExecutor,
)
from repro.core.metrics import StudyMetrics
from repro.core.taxonomy import TrafficClass
from repro.honeypots.base import HoneypotDeployment
from repro.intel.censysiot import CensysIotDB
from repro.intel.exonerator import ExoneraTorDB
from repro.intel.greynoise import GreyNoiseDB
from repro.intel.virustotal import VirusTotalDB
from repro.internet.population import Population
from repro.net.asn import AsnRegistry
from repro.net.errors import PhaseOrderError
from repro.net.geo import GeoRegistry
from repro.protocols.base import ProtocolId
from repro.scanner.records import ScanDatabase
from repro.telescope.telescope import TelescopeCapture

__all__ = ["StudyResults", "Study"]


@dataclass
class StudyResults:
    """Everything a full run produces, keyed to the paper's artifacts."""

    config: StudyConfig
    population: Optional[Population] = None
    geo: Optional[GeoRegistry] = None
    asn: Optional[AsnRegistry] = None
    # scan phase
    zmap_db: Optional[ScanDatabase] = None
    sonar_db: Optional[ScanDatabase] = None
    shodan_db: Optional[ScanDatabase] = None
    merged_db: Optional[ScanDatabase] = None
    # fingerprint phase (Table 6)
    fingerprints: Optional[FingerprintReport] = None
    # classification phase (Tables 5/10, Figure 2)
    misconfig: Optional[MisconfigReport] = None
    device_types: Optional[DeviceTypeReport] = None
    countries: Optional[CountryReport] = None
    # attack phase (Table 7, Figures 3/4/7/8)
    deployment: Optional[HoneypotDeployment] = None
    schedule: Optional[ScheduleResult] = None
    # telescope phase (Table 8)
    telescope: Optional[TelescopeCapture] = None
    # intel stores
    greynoise: Optional[GreyNoiseDB] = None
    virustotal: Optional[VirusTotalDB] = None
    censys_iot: Optional[CensysIotDB] = None
    exonerator: Optional[ExoneraTorDB] = None
    # joins (Figures 5/6/9, §5.3)
    multistage: Optional[MultistageReport] = None
    infected: Optional[InfectedHostsReport] = None
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    # -- derived views used by reports and benches -------------------------

    def table4_counts(self) -> Dict[str, Dict[ProtocolId, int]]:
        """Exposed hosts per protocol per source — Table 4."""
        result: Dict[str, Dict[ProtocolId, int]] = {}
        for name, database in (
            ("zmap", self.zmap_db),
            ("sonar", self.sonar_db),
            ("shodan", self.shodan_db),
        ):
            if database is not None:
                result[name] = database.counts_by_protocol()
        return result

    def honeypot_source_split(self, honeypot: str) -> Tuple[int, int, int]:
        """(scanning, malicious, unknown) unique sources for one honeypot —
        Table 7's last columns, computed via rDNS like the paper did."""
        if self.schedule is None:
            raise PhaseOrderError(
                "honeypot_source_split needs the attack month — "
                "run_attacks first", missing=("schedule",),
            )
        sources = self.schedule.log.unique_sources(honeypot=honeypot)
        scanning = malicious = unknown = 0
        for address in sources:
            info = self.schedule.registry.get(address)
            if info is None:
                unknown += 1
            elif info.traffic_class == TrafficClass.SCANNING_SERVICE:
                scanning += 1
            elif info.traffic_class == TrafficClass.MALICIOUS:
                malicious += 1
            else:
                unknown += 1
        return scanning, malicious, unknown


#: Facade method → (artifacts it must find materialized, hint) when strict.
_STRICT_PREREQS: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "run_scans": (("population",), "build_world"),
    "run_fingerprinting": (("merged_db",), "run_scans"),
    "run_classification": (("merged_db", "fingerprints"),
                           "run_fingerprinting"),
    "run_attacks": (("population",), "build_world"),
    "run_telescope": (("schedule",), "run_attacks"),
    "build_intel": (("schedule",), "run_attacks"),
    "run_joins": (("misconfig", "schedule", "telescope", "virustotal"),
                  "run_telescope and build_intel"),
}

#: Engine artifact name → StudyResults field (identical today, but kept
#: explicit so the facade fails loudly if the graph grows a new artifact).
_RESULT_FIELDS = (
    "population", "geo", "asn", "zmap_db", "sonar_db", "shodan_db",
    "merged_db", "fingerprints", "misconfig", "device_types", "countries",
    "deployment", "schedule", "telescope", "greynoise", "virustotal",
    "censys_iot", "exonerator", "multistage", "infected",
)


class Study:
    """Pipeline driver: a facade over :class:`StudyEngine`.

    Parameters
    ----------
    config:
        The study configuration (defaults to paper scales).
    executor:
        ``"serial"`` (default), ``"thread"``, or an executor instance —
        how independent phases of one wave are dispatched.
    cache:
        ``None``/``True`` for the process-wide shared phase cache,
        ``False`` to disable memoization, or a private
        :class:`~repro.core.engine.PhaseCache` (e.g. with ``directory=``
        for the persistent on-disk layer).
    auto_resolve:
        When True (default), calling any phase method runs its
        prerequisites automatically; when False, missing prerequisites
        raise :class:`~repro.net.errors.PhaseOrderError`.
    """

    def __init__(
        self,
        config: Optional[StudyConfig] = None,
        *,
        executor: Union[None, str, SerialExecutor, ThreadedExecutor] = None,
        cache: Union[None, bool, PhaseCache] = None,
        auto_resolve: bool = True,
    ) -> None:
        self.config = config or StudyConfig()
        self.auto_resolve = auto_resolve
        self.engine = StudyEngine(
            self.config, executor=executor, cache=cache
        )
        self.results = StudyResults(config=self.config)

    # -- engine plumbing ---------------------------------------------------

    @property
    def metrics(self) -> StudyMetrics:
        """Per-phase wall time, cache hits and throughput for this study."""
        return self.engine.metrics

    def _ensure(self, method: str, *artifacts: str) -> None:
        if not self.auto_resolve and method in _STRICT_PREREQS:
            needed, hint = _STRICT_PREREQS[method]
            missing = [a for a in needed if not self.engine.materialized(a)]
            if missing:
                raise PhaseOrderError(
                    f"{method} requires {', '.join(missing)} — "
                    f"call {hint} first",
                    missing=missing,
                )
        self.engine.ensure(*artifacts)
        self._sync()

    def _sync(self) -> None:
        """Mirror engine artifacts and timings onto :class:`StudyResults`."""
        for name in _RESULT_FIELDS:
            if self.engine.materialized(name):
                setattr(self.results, name, self.engine.artifact(name))
        self.results.phase_seconds = self.engine.metrics.group_seconds()

    # -- phases -----------------------------------------------------------

    def build_world(self) -> Population:
        """Phase 1: the scaled Internet."""
        self._ensure("build_world", "population", "geo", "asn")
        return self.results.population

    def run_scans(self) -> ScanDatabase:
        """Phase 2: our campaign plus open datasets, merged."""
        self._ensure("run_scans", "merged_db")
        return self.results.merged_db

    def run_fingerprinting(self) -> FingerprintReport:
        """Phase 3: find honeypots hiding in the scan results."""
        self._ensure("run_fingerprinting", "fingerprints")
        return self.results.fingerprints

    def run_classification(self) -> MisconfigReport:
        """Phase 4: misconfigurations, device types, countries."""
        self._ensure(
            "run_classification", "misconfig", "device_types", "countries"
        )
        return self.results.misconfig

    def run_attacks(self) -> ScheduleResult:
        """Phase 5: deploy the lab and simulate the month."""
        self._ensure("run_attacks", "deployment", "schedule")
        return self.results.schedule

    def run_telescope(self) -> TelescopeCapture:
        """Phase 6: the darknet capture."""
        self._ensure("run_telescope", "telescope")
        return self.results.telescope

    def build_intel(self) -> None:
        """Phase 7: populate the threat-intelligence stores."""
        self._ensure(
            "build_intel",
            "greynoise", "virustotal", "censys_iot", "exonerator",
        )

    def run_joins(self) -> InfectedHostsReport:
        """Phase 8: the cross-experiment analyses."""
        self._ensure("run_joins", "multistage", "infected")
        return self.results.infected

    # -- the whole paper ----------------------------------------------------

    def run(self) -> StudyResults:
        """Execute every phase (independent branches may run concurrently)
        and return the results."""
        self._ensure("run", *self.engine.graph.artifacts())
        return self.results

    def validate(self, registry=None):
        """Run the cross-plane structural invariants over the artifacts.

        Materializes (or reuses) exactly the artifacts each invariant
        needs, plane by plane, and returns the list of
        :class:`~repro.core.validate.Violation` found — empty when the
        study's artifacts are structurally sound.  The CLI's ``validate``
        subcommand maps a non-empty result to exit code 5.
        """
        from repro.core.validate import run_validation

        violations = run_validation(self.engine, registry)
        self._sync()
        return violations
