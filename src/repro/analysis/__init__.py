"""Analysis: misconfig classification, device typing, honeypot fingerprints."""

from repro.analysis.amplification import (
    AmplificationReport,
    analyze_amplification,
)
from repro.analysis.attack_origins import (
    TorAnalysis,
    analyze_tor_sources,
    dos_origin_countries,
    duplicate_dns_sources,
)
from repro.analysis.country import CountryReport, country_distribution
from repro.analysis.ics import IcsTrafficReport, analyze_ics_traffic
from repro.analysis.infected import InfectedHostsReport, analyze_infected_hosts
from repro.analysis.multistage import MultistageReport, detect_multistage
from repro.analysis.recurrence import RecurrenceClassifier, RecurrencePattern
from repro.analysis.timing import TimingFingerprinter, TimingVerdict
from repro.analysis.device_type import (
    DeviceTypeReport,
    build_device_signatures,
    identify_device_types,
)
from repro.analysis.fingerprint import (
    FingerprintReport,
    HoneypotFingerprinter,
    HoneypotSignature,
    default_signatures,
)
from repro.analysis.listing_impact import (
    ListingEffect,
    ListingImpactReport,
    analyze_listing_impact,
)
from repro.analysis.misconfig import (
    VULNERABLE_AMQP_VERSIONS,
    MisconfigReport,
    classify_database,
    classify_record,
)

__all__ = [
    "AmplificationReport",
    "CountryReport",
    "analyze_amplification",
    "TorAnalysis",
    "analyze_tor_sources",
    "dos_origin_countries",
    "duplicate_dns_sources",
    "IcsTrafficReport",
    "InfectedHostsReport",
    "analyze_ics_traffic",
    "ListingEffect",
    "ListingImpactReport",
    "analyze_listing_impact",
    "MultistageReport",
    "RecurrenceClassifier",
    "TimingFingerprinter",
    "TimingVerdict",
    "RecurrencePattern",
    "analyze_infected_hosts",
    "detect_multistage",
    "DeviceTypeReport",
    "FingerprintReport",
    "HoneypotFingerprinter",
    "HoneypotSignature",
    "MisconfigReport",
    "VULNERABLE_AMQP_VERSIONS",
    "build_device_signatures",
    "classify_database",
    "classify_record",
    "country_distribution",
    "default_signatures",
    "identify_device_types",
]
