"""Recurrence analysis: recurring scanners vs one-time suspicious scans.

"We observe that the IPs from the scanning services scan the Internet
periodically and thus are recurring, unlike suspicious one-time scans"
(Section 4.3.1).  That observation is itself a classifier: a source whose
visits recur across many days behaves like scanning infrastructure even
when its reverse DNS is silent.

:class:`RecurrenceClassifier` implements it over the honeypot event log:
a source is *recurring* when it appears on at least ``min_active_days``
distinct days spanning at least ``min_span_days``.  Tests score it against
the registry's ground truth, and the Figure 5 pipeline can use it as a
second opinion next to the rDNS method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.columns import ColumnStore

__all__ = ["RecurrencePattern", "RecurrenceClassifier"]


@dataclass
class RecurrencePattern:
    """Visit pattern of one source."""

    source: int
    active_days: Set[int] = field(default_factory=set)
    total_events: int = 0

    @property
    def n_active_days(self) -> int:
        """Distinct days the source appeared."""
        return len(self.active_days)

    @property
    def span_days(self) -> int:
        """Days between first and last appearance (inclusive)."""
        if not self.active_days:
            return 0
        return max(self.active_days) - min(self.active_days) + 1

    @property
    def regularity(self) -> float:
        """Active-day density over the activity span, in [0, 1]."""
        span = self.span_days
        return self.n_active_days / span if span else 0.0


class RecurrenceClassifier:
    """Labels sources as recurring (scanner-like) or one-time."""

    def __init__(
        self,
        *,
        min_active_days: int = 4,
        min_span_days: int = 10,
        min_regularity: float = 0.25,
    ) -> None:
        self.min_active_days = min_active_days
        self.min_span_days = min_span_days
        self.min_regularity = min_regularity

    def patterns(self, log: ColumnStore) -> Dict[int, RecurrencePattern]:
        """Aggregate visit patterns per source.

        Driven from the store's per-source index — one grouped pass
        instead of a full scan with per-event dict lookups.
        """
        return {
            source: RecurrencePattern(
                source=source,
                active_days={event.day for event in events},
                total_events=len(events),
            )
            for source, events in log.group_by_source().items()
        }

    def is_recurring(self, pattern: RecurrencePattern) -> bool:
        """The §4.3.1 heuristic."""
        return (
            pattern.n_active_days >= self.min_active_days
            and pattern.span_days >= self.min_span_days
            and pattern.regularity >= self.min_regularity
        )

    def classify(self, log: ColumnStore) -> Tuple[Set[int], Set[int]]:
        """Split the log's sources into (recurring, one-time)."""
        recurring: Set[int] = set()
        one_time: Set[int] = set()
        for source, pattern in self.patterns(log).items():
            if self.is_recurring(pattern):
                recurring.add(source)
            else:
                one_time.add(source)
        return recurring, one_time

    def score_against(
        self, log: ColumnStore, truth_scanning: Set[int]
    ) -> Dict[str, float]:
        """Precision/recall of 'recurring' as a scanning-service detector."""
        recurring, _ = self.classify(log)
        if not recurring:
            return {"precision": 0.0, "recall": 0.0}
        true_positives = len(recurring & truth_scanning)
        precision = true_positives / len(recurring)
        seen_truth = truth_scanning & log.unique_sources()
        recall = true_positives / len(seen_truth) if seen_truth else 0.0
        return {"precision": precision, "recall": recall}
