"""Timing-based honeypot fingerprinting — the §2.4 second modality.

Banner fingerprinting fails against honeypots that randomize their
greetings; response-time fingerprinting does not care what the banner says.
The prober measures ``n`` application-layer RTTs per candidate and computes
two statistics:

* **median RTT** — low-interaction honeypots answer from memory on
  datacenter hosts, far faster than embedded devices on consumer uplinks;
* **coefficient of variation** — an emulator's timing is eerily stable,
  a loaded SoC's is not.

A candidate scoring low on both is flagged.  The combined detector
(banners OR timing) is what the multistage fingerprinting framework the
paper extends actually runs: each check narrows the candidate set.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.internet.fabric import SimulatedInternet
from repro.net.prng import RandomStream

__all__ = ["TimingVerdict", "TimingFingerprinter"]


@dataclass
class TimingVerdict:
    """Timing statistics and verdict for one candidate."""

    address: int
    port: int
    median_ms: float
    coefficient_of_variation: float
    is_honeypot: bool


class TimingFingerprinter:
    """Measures candidates' RTT distributions and flags emulator timing.

    Parameters
    ----------
    samples:
        RTT measurements per candidate (the real frameworks use 10-30; more
        samples sharpen the variance estimate but cost scan time).
    median_threshold_ms:
        Candidates answering faster than this look like datacenter
        emulators rather than embedded devices.
    cv_threshold:
        Coefficient-of-variation ceiling; real device jitter sits well
        above it.
    """

    def __init__(
        self,
        *,
        samples: int = 12,
        median_threshold_ms: float = 3.0,
        cv_threshold: float = 0.12,
        seed: int = 7,
        prober_address: int = 0x82E10065,  # 130.225.0.101
    ) -> None:
        if samples < 3:
            raise ValueError("need at least 3 samples for a variance")
        self.samples = samples
        self.median_threshold_ms = median_threshold_ms
        self.cv_threshold = cv_threshold
        self.seed = seed
        self.prober_address = prober_address

    def measure(
        self, internet: SimulatedInternet, address: int, port: int
    ) -> Optional[TimingVerdict]:
        """Probe one candidate; None when the service does not answer."""
        stream = RandomStream(self.seed, f"timing.{address}.{port}")
        rtts: List[float] = []
        for _ in range(self.samples):
            rtt = internet.measure_rtt(
                self.prober_address, address, port, stream
            )
            if rtt is None:
                return None
            rtts.append(rtt)
        median = statistics.median(rtts)
        mean = statistics.fmean(rtts)
        deviation = statistics.pstdev(rtts)
        cv = deviation / mean if mean else 0.0
        return TimingVerdict(
            address=address,
            port=port,
            median_ms=median,
            coefficient_of_variation=cv,
            is_honeypot=(
                median < self.median_threshold_ms and cv < self.cv_threshold
            ),
        )

    def fingerprint(
        self,
        internet: SimulatedInternet,
        candidates: Iterable[Tuple[int, int]],
    ) -> Dict[int, TimingVerdict]:
        """Probe (address, port) candidates; returns verdicts by address."""
        verdicts: Dict[int, TimingVerdict] = {}
        for address, port in candidates:
            verdict = self.measure(internet, address, port)
            if verdict is not None:
                verdicts[address] = verdict
        return verdicts

    def flagged(
        self,
        internet: SimulatedInternet,
        candidates: Iterable[Tuple[int, int]],
    ) -> Set[int]:
        """Addresses whose timing says 'emulator'."""
        return {
            address
            for address, verdict in self.fingerprint(
                internet, candidates
            ).items()
            if verdict.is_honeypot
        }
