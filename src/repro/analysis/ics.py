"""Industrial-protocol traffic analysis — Section 5.1.4 quantified.

Conpot's Modbus/S7 surfaces drew three observations in the paper:

* poisoning attacks "tried to access and change the values stored in the
  registers";
* "the attacks targeted three of the nineteen available function codes"
  — device identification, the holding registers, and report-server-id;
* "Only 10% of the Modbus traffic used valid function codes";
* S7 DoS flooding via PDU-type-1 job requests (ICSA-16-299-01).

:func:`analyze_ics_traffic` recovers all of these from the deployment's
Modbus/S7 servers and the event log — the server counters are observables
(a real Conpot logs exactly these), not simulation ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.taxonomy import AttackType
from repro.honeypots.base import HoneypotDeployment
from repro.honeypots.events import EventLog
from repro.protocols.base import ProtocolId
from repro.protocols.modbus import ModbusServer
from repro.protocols.s7 import S7Server

__all__ = ["IcsTrafficReport", "analyze_ics_traffic"]


@dataclass
class IcsTrafficReport:
    """The §5.1.4 observables."""

    modbus_valid_requests: int = 0
    modbus_invalid_requests: int = 0
    modbus_register_writes: int = 0
    s7_job_floods: int = 0          # DoS-classified S7 sessions
    s7_register_writes: int = 0
    s7_read_requests: int = 0
    modbus_poisoning_events: int = 0
    s7_poisoning_events: int = 0

    @property
    def modbus_valid_fraction(self) -> float:
        """Share of Modbus requests using valid function codes (the paper
        reports ~10%)."""
        total = self.modbus_valid_requests + self.modbus_invalid_requests
        return self.modbus_valid_requests / total if total else 0.0


def analyze_ics_traffic(
    deployment: HoneypotDeployment,
    log: Optional[EventLog] = None,
) -> IcsTrafficReport:
    """Aggregate the ICS observables from the Conpot-style honeypots."""
    report = IcsTrafficReport()
    for honeypot in deployment.honeypots:
        for server in honeypot.services.values():
            if isinstance(server, ModbusServer):
                report.modbus_valid_requests += server.valid_function_requests
                report.modbus_invalid_requests += (
                    server.invalid_function_requests)
                report.modbus_poisoning_events += server.poison_events
                report.modbus_register_writes += server.poison_events
            elif isinstance(server, S7Server):
                report.s7_read_requests += server.read_requests
                report.s7_register_writes += server.write_requests
                report.s7_poisoning_events += server.write_requests
    if log is not None:
        report.s7_job_floods = log.count_by_type(ProtocolId.S7).get(
            AttackType.DOS_FLOOD, 0
        )
    return report
