"""Listing-impact analysis — Section 5.2 quantified.

"We observed an increase in the number of attacks on the honeypots after
their listing on scanning-services like Shodan, BinaryEdge and ZoomEye ...
We observe an upward trend in the number of attacks after being listed."

The paper shows this as Figure 8's annotated timeline; this module turns it
into numbers: for each honeypot and each listing event, the mean daily
attack rate before vs after the listing (excluding the DoS spike days so a
flood doesn't masquerade as a listing effect), and an aggregate
amplification factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.honeypots.base import HoneypotDeployment
from repro.honeypots.events import EventLog

__all__ = ["ListingEffect", "ListingImpactReport", "analyze_listing_impact"]


@dataclass
class ListingEffect:
    """Before/after rates around one listing event."""

    honeypot: str
    service: str
    listing_day: int
    rate_before: float  # mean events/day before the listing
    rate_after: float   # mean events/day after (spike days excluded)

    @property
    def amplification(self) -> float:
        """after/before rate ratio (inf when the before-rate is zero)."""
        if self.rate_before == 0:
            return float("inf") if self.rate_after > 0 else 1.0
        return self.rate_after / self.rate_before


@dataclass
class ListingImpactReport:
    """All listing effects plus aggregates."""

    effects: List[ListingEffect] = field(default_factory=list)

    def for_honeypot(self, honeypot: str) -> List[ListingEffect]:
        """Effects observed on one honeypot."""
        return [effect for effect in self.effects
                if effect.honeypot == honeypot]

    def mean_amplification(self) -> float:
        """Mean after/before ratio across finite effects."""
        finite = [effect.amplification for effect in self.effects
                  if effect.amplification != float("inf")]
        return sum(finite) / len(finite) if finite else 0.0

    def fraction_amplified(self) -> float:
        """Share of listing events followed by a rate increase."""
        if not self.effects:
            return 0.0
        increased = sum(
            1 for effect in self.effects if effect.amplification > 1.0
        )
        return increased / len(self.effects)


def analyze_listing_impact(
    log: EventLog,
    deployment: HoneypotDeployment,
    *,
    days: int = 30,
    exclude_days: Iterable[int] = (23, 25),
) -> ListingImpactReport:
    """Compute before/after attack rates around every listing event.

    ``exclude_days`` removes the annotated DoS spikes from the after-window
    so the listing effect isn't conflated with flood events (the paper
    plots both on Figure 8 but discusses them separately).
    """
    excluded = set(exclude_days)
    report = ListingImpactReport()
    for honeypot in deployment.honeypots:
        daily: Dict[int, int] = {}
        for event in log.by_honeypot(honeypot.name):
            daily[event.day] = daily.get(event.day, 0) + 1
        for service, listing_day in sorted(
            honeypot.listing_days.items(), key=lambda item: item[1]
        ):
            before_days = [day for day in range(listing_day)
                           if day not in excluded]
            after_days = [day for day in range(listing_day, days)
                          if day not in excluded]
            if not before_days or not after_days:
                continue
            rate_before = sum(daily.get(day, 0) for day in before_days) / len(
                before_days)
            rate_after = sum(daily.get(day, 0) for day in after_days) / len(
                after_days)
            report.effects.append(ListingEffect(
                honeypot=honeypot.name,
                service=service,
                listing_day=listing_day,
                rate_before=rate_before,
                rate_after=rate_after,
            ))
    return report
