"""Honeypot fingerprinting — the Table 6 filter.

"We deploy open-source and widely used honeypots in our lab to determine the
unique characteristics that differentiate them ... static banners, response,
or content" (Section 3.2).  The fingerprinter matches each Telnet/SSH scan
record against the catalog of frozen banners; a hit marks the source address
as a honeypot and names the product.

The canonical pipeline order matters and is preserved by
:func:`repro.core.study.Study`: fingerprint *first*, then classify
misconfigurations with the honeypot addresses excluded — otherwise, e.g.,
Anglerfish's ``[root@LocalHost tmp]$`` banner would be counted as a
root-console misconfiguration (the pollution the paper quantifies at 8,192
hosts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.internet.wild_honeypots import WILD_HONEYPOT_CATALOG, WildHoneypotKind
from repro.protocols.base import ProtocolId
from repro.scanner.records import ScanDatabase, ScanRecord

__all__ = ["HoneypotSignature", "default_signatures", "FingerprintReport", "HoneypotFingerprinter"]


@dataclass(frozen=True)
class HoneypotSignature:
    """A frozen banner prefix that identifies one honeypot product."""

    honeypot: str
    protocol: ProtocolId
    banner_prefix: bytes

    def matches(self, record: ScanRecord) -> bool:
        if record.protocol != self.protocol:
            return False
        return record.banner.startswith(self.banner_prefix)


def default_signatures() -> List[HoneypotSignature]:
    """Signatures for the nine products of Table 6.

    Built from the same published banners the wild deployment uses — which
    mirrors reality: the authors learned the banners by running the same
    open-source honeypots they later detected.
    """
    signatures = []
    for kind in WILD_HONEYPOT_CATALOG:
        protocol = (
            ProtocolId.SSH if kind.protocol == ProtocolId.SSH else ProtocolId.TELNET
        )
        signatures.append(
            HoneypotSignature(
                honeypot=kind.name,
                protocol=protocol,
                banner_prefix=kind.banner.rstrip(),
            )
        )
    return signatures


@dataclass
class FingerprintReport:
    """Detected honeypots: product → address set."""

    detections: Dict[str, Set[int]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Total detected honeypot instances (Table 6's 8,192)."""
        return sum(len(addresses) for addresses in self.detections.values())

    def addresses(self) -> Set[int]:
        """All addresses fingerprinted as honeypots."""
        result: Set[int] = set()
        for addresses in self.detections.values():
            result.update(addresses)
        return result

    def count(self, honeypot: str) -> int:
        """Instances detected of one product."""
        return len(self.detections.get(honeypot, set()))

    def rows(self) -> List[Tuple[str, int]]:
        """(product, count) rows in catalog order — Table 6's layout."""
        order = [kind.name for kind in WILD_HONEYPOT_CATALOG]
        return [(name, self.count(name)) for name in order]


class HoneypotFingerprinter:
    """Matches scan records against honeypot banner signatures."""

    def __init__(self, signatures: Optional[Iterable[HoneypotSignature]] = None) -> None:
        self.signatures: List[HoneypotSignature] = list(
            signatures if signatures is not None else default_signatures()
        )

    def fingerprint_record(self, record: ScanRecord) -> Optional[str]:
        """Product name if the record matches a honeypot signature."""
        for signature in self.signatures:
            if signature.matches(record):
                return signature.honeypot
        return None

    def fingerprint(self, database: ScanDatabase) -> FingerprintReport:
        """Scan the whole database for honeypots."""
        report = FingerprintReport(
            detections={signature.honeypot: set() for signature in self.signatures}
        )
        # Only rows of fingerprintable protocols can match; the typed
        # query skips the rest without building row views for them.
        protocols = {signature.protocol for signature in self.signatures}
        for row in database.where(protocol=protocols).iter_rows():
            name = self.fingerprint_record(row)
            if name is not None:
                report.detections.setdefault(name, set()).add(row.address)
        return report

    def active_ssh_probe(
        self,
        internet,
        addresses: Iterable[int],
        *,
        prober_address: int = 0x82E10064,  # 130.225.0.100
        report: Optional[FingerprintReport] = None,
    ) -> FingerprintReport:
        """Second fingerprinting stage: probe SSH on candidate addresses.

        The multistage framework the paper extends performs "sequential
        checks based on the services discovered on the target host"; Kippo
        is an SSH honeypot, so Telnet-only scans never see its banner.  This
        pass connects to port 22 on each candidate and matches the frozen
        SSH identification strings.
        """
        from repro.net.errors import ConnectionRefused, HostUnreachable

        result = report or FingerprintReport(
            detections={signature.honeypot: set() for signature in self.signatures}
        )
        ssh_signatures = [
            signature for signature in self.signatures
            if signature.protocol == ProtocolId.SSH
        ]
        if not ssh_signatures:
            return result
        for address in addresses:
            try:
                connection = internet.tcp_connect(prober_address, address, 22)
            except (HostUnreachable, ConnectionRefused):
                continue
            banner = connection.banner
            connection.close()
            for signature in ssh_signatures:
                if banner.startswith(signature.banner_prefix):
                    result.detections.setdefault(signature.honeypot, set()).add(
                        address
                    )
                    break
        return result
