"""Reflector amplification analysis — the paper's DDoS-capacity claim.

The scan's headline risk statement: 1.8 M misconfigured devices "can either
be infected with bots or be leveraged for a (D)DoS amplification attack",
with CoAP and UPnP reflection resources making up >84% of Table 5.  This
module turns that claim into numbers, from observables alone:

* per-record **amplification factor** — response bytes over probe bytes for
  every UDP reflector in the scan database (the same ratio Cloudflare/
  US-CERT use to rank reflection vectors);
* the aggregate **bandwidth amplification capacity** — what attack volume
  the discovered reflector population could reflect for a given spoofed
  query rate, the quantity a booter service would monetize ("Open for
  hire").
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.protocols.base import ProtocolId, TransportKind
from repro.scanner.probes import udp_probe_payload
from repro.scanner.records import ScanDatabase

__all__ = ["AmplificationReport", "analyze_amplification"]

#: Protocols with response-based (UDP) reflection surfaces in the study.
_REFLECTION_PROTOCOLS = (ProtocolId.COAP, ProtocolId.UPNP, ProtocolId.DDS)


@dataclass
class AmplificationReport:
    """Per-protocol amplification statistics over the scanned reflectors."""

    #: protocol → list of per-device amplification factors.
    factors: Dict[ProtocolId, List[float]] = field(default_factory=dict)

    def reflector_count(self, protocol: Optional[ProtocolId] = None) -> int:
        """Devices that amplified (factor > 1)."""
        protocols = [protocol] if protocol else list(self.factors)
        return sum(
            sum(1 for factor in self.factors.get(p, []) if factor > 1.0)
            for p in protocols
        )

    def median_factor(self, protocol: ProtocolId) -> float:
        """Median amplification factor of one protocol's responders."""
        factors = self.factors.get(protocol, [])
        return statistics.median(factors) if factors else 0.0

    def max_factor(self, protocol: ProtocolId) -> float:
        """The juiciest reflector found (booters hunt for these)."""
        factors = self.factors.get(protocol, [])
        return max(factors) if factors else 0.0

    def capacity_gbps(
        self,
        queries_per_second_per_reflector: float = 100.0,
        probe_bytes: int = 100,
    ) -> float:
        """Aggregate reflected bandwidth at a given spoofed query rate.

        A deliberately simple booter model: every amplifying reflector is
        driven at ``queries_per_second_per_reflector`` spoofed queries of
        ``probe_bytes`` each; the victim receives the amplified stream.
        """
        total_bytes_per_second = 0.0
        for factors in self.factors.values():
            for factor in factors:
                if factor > 1.0:
                    total_bytes_per_second += (
                        factor * probe_bytes * queries_per_second_per_reflector
                    )
        return total_bytes_per_second * 8 / 1e9

    def rows(self) -> List[Tuple[str, int, float, float]]:
        """(protocol, reflectors, median factor, max factor) rows."""
        return [
            (str(protocol), self.reflector_count(protocol),
             round(self.median_factor(protocol), 2),
             round(self.max_factor(protocol), 2))
            for protocol in self.factors
        ]


def analyze_amplification(database: ScanDatabase) -> AmplificationReport:
    """Compute amplification factors for every UDP responder in a scan.

    The probe size is what our scanner actually sent (the CoAP
    ``/.well-known/core`` GET, the SSDP M-SEARCH); the response size is
    what the device actually returned — both straight from the records.
    """
    report = AmplificationReport()
    probe_sizes = {
        protocol: len(udp_probe_payload(protocol))
        for protocol in _REFLECTION_PROTOCOLS
    }
    for record in database:
        if record.protocol not in _REFLECTION_PROTOCOLS:
            continue
        if record.transport != TransportKind.UDP or not record.response:
            continue
        probe_size = probe_sizes[record.protocol]
        factor = len(record.response) / max(1, probe_size)
        report.factors.setdefault(record.protocol, []).append(factor)
    return report
