"""Misconfiguration classification — Tables 2, 3 and 5.

The classifier consumes only scan-record bytes (banners and responses),
never ground truth.  Per protocol it applies the paper's indicators:

========  ==========================================  =======================
Protocol  Observable indicator                         Verdict
========  ==========================================  =======================
Telnet    banner ends in ``root@xxx:~$``/``admin@``    no auth, root console
Telnet    banner ends in a plain ``$`` prompt          no auth, console
MQTT      CONNACK return code 0 to blank CONNECT       no auth
AMQP      Connection.Start offers ANONYMOUS, or the    no auth
          product version is a known-vulnerable one
XMPP      SASL ANONYMOUS offered                       anonymous login
XMPP      PLAIN offered without STARTTLS               no encryption
CoAP      ``220-Admin`` marker in response             no auth, admin access
CoAP      ``x1C``/``220`` marker in response           no auth (full access)
CoAP      link-format resource listing                 reflection resource
UPnP      M-SEARCH reply disclosing ``LOCATION``       reflection resource
========  ==========================================  =======================
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.core.taxonomy import MISCONFIG_LABELS, MISCONFIG_PROTOCOL, Misconfig
from repro.net.errors import ProtocolError
from repro.protocols.amqp import parse_connection_start
from repro.protocols.base import ProtocolId
from repro.protocols.mqtt import ConnectReturnCode, decode_connack
from repro.protocols.telnet import strip_iac
from repro.protocols.xmpp import offers_starttls, parse_mechanisms
from repro.core.columns import ColumnStore
from repro.scanner.records import ScanRecord

__all__ = [
    "VULNERABLE_AMQP_VERSIONS",
    "classify_record",
    "MisconfigReport",
    "classify_database",
]

#: Table 2's AMQP rows: versions whose presence alone flags the broker.
VULNERABLE_AMQP_VERSIONS = frozenset({"2.7.1", "2.8.4"})

_ROOT_PROMPT_RE = re.compile(r"(root|admin)@[\w.\-]+:~[#$]\s*$")
_PLAIN_PROMPT_RE = re.compile(r"[#$]\s*$")


def classify_record(record: ScanRecord) -> Misconfig:
    """Classify one scan record; :data:`Misconfig.NONE` when healthy."""
    handler = _CLASSIFIERS.get(record.protocol)
    return handler(record) if handler else Misconfig.NONE


def _classify_telnet(record: ScanRecord) -> Misconfig:
    text = strip_iac(record.banner).decode("utf-8", errors="replace")
    if not text:
        return Misconfig.NONE
    if _ROOT_PROMPT_RE.search(text):
        return Misconfig.TELNET_NO_AUTH_ROOT
    if "login" in text.lower() or "password" in text.lower():
        return Misconfig.NONE
    if _PLAIN_PROMPT_RE.search(text):
        return Misconfig.TELNET_NO_AUTH
    return Misconfig.NONE


def _classify_mqtt(record: ScanRecord) -> Misconfig:
    try:
        code = decode_connack(record.response)
    except ProtocolError:
        return Misconfig.NONE
    if code == ConnectReturnCode.ACCEPTED:
        return Misconfig.MQTT_NO_AUTH
    return Misconfig.NONE


def _classify_amqp(record: ScanRecord) -> Misconfig:
    try:
        properties, mechanisms = parse_connection_start(record.response)
    except ProtocolError:
        return Misconfig.NONE
    if "ANONYMOUS" in mechanisms:
        return Misconfig.AMQP_NO_AUTH
    if properties.get("version", "") in VULNERABLE_AMQP_VERSIONS:
        return Misconfig.AMQP_NO_AUTH
    return Misconfig.NONE


def _classify_xmpp(record: ScanRecord) -> Misconfig:
    features = record.response_text
    mechanisms = parse_mechanisms(features)
    if not mechanisms:
        return Misconfig.NONE
    if "ANONYMOUS" in mechanisms:
        return Misconfig.XMPP_ANONYMOUS
    if "PLAIN" in mechanisms and not offers_starttls(features):
        return Misconfig.XMPP_NO_ENCRYPTION
    return Misconfig.NONE


def _classify_coap(record: ScanRecord) -> Misconfig:
    payload = record.response_text
    if not payload:
        return Misconfig.NONE
    # Skip past the CoAP binary header to the text payload markers.
    if "220-Admin" in payload:
        return Misconfig.COAP_NO_AUTH_ADMIN
    if "x1C" in payload or re.search(r"\b220\b", payload):
        return Misconfig.COAP_NO_AUTH
    if "</" in payload or ";rt=" in payload or "<" in payload and ">" in payload:
        return Misconfig.COAP_REFLECTOR
    return Misconfig.NONE


def _classify_upnp(record: ScanRecord) -> Misconfig:
    text = record.response_text
    if "LOCATION:" in text.upper():
        return Misconfig.UPNP_REFLECTOR
    return Misconfig.NONE


# -- extension protocols (§6 future work) ----------------------------------


def _classify_tr069(record: ScanRecord) -> Misconfig:
    """A 200 to an unauthenticated connection request = open management."""
    text = record.response_text
    if text.startswith("HTTP/1.1 200") and "WWW-Authenticate" not in text:
        return Misconfig.TR069_NO_AUTH
    return Misconfig.NONE


def _classify_dds(record: ScanRecord) -> Misconfig:
    """Any SPDP announcement to a unicast probe = open discovery."""
    if record.response[:4] == b"RTPS":
        return Misconfig.DDS_OPEN_DISCOVERY
    return Misconfig.NONE


def _classify_opcua(record: ScanRecord) -> Misconfig:
    """A GetEndpoints response offering SecurityPolicy#None = no security."""
    if "SecurityPolicy#None" in record.response_text:
        return Misconfig.OPCUA_NO_SECURITY
    return Misconfig.NONE


_CLASSIFIERS = {
    ProtocolId.TELNET: _classify_telnet,
    ProtocolId.MQTT: _classify_mqtt,
    ProtocolId.AMQP: _classify_amqp,
    ProtocolId.XMPP: _classify_xmpp,
    ProtocolId.COAP: _classify_coap,
    ProtocolId.UPNP: _classify_upnp,
    ProtocolId.TR069: _classify_tr069,
    ProtocolId.DDS: _classify_dds,
    ProtocolId.OPCUA: _classify_opcua,
}


@dataclass
class MisconfigReport:
    """Table 5 as data: per-class address sets plus the grand total."""

    hosts_by_class: Dict[Misconfig, Set[int]] = field(default_factory=dict)

    def count(self, label: Misconfig) -> int:
        """Devices found with one vulnerability class."""
        return len(self.hosts_by_class.get(label, set()))

    @property
    def total(self) -> int:
        """Total unique misconfigured devices (Table 5's bottom line)."""
        addresses: Set[int] = set()
        for hosts in self.hosts_by_class.values():
            addresses.update(hosts)
        return len(addresses)

    def all_addresses(self) -> Set[int]:
        """Union of all misconfigured addresses."""
        addresses: Set[int] = set()
        for hosts in self.hosts_by_class.values():
            addresses.update(hosts)
        return addresses

    def rows(self) -> List[tuple]:
        """(protocol, vulnerability, count) rows, ascending by count —
        the ordering Table 5 prints."""
        rows = [
            (
                str(MISCONFIG_PROTOCOL[label]),
                MISCONFIG_LABELS[label],
                self.count(label),
            )
            for label in self.hosts_by_class
        ]
        return sorted(rows, key=lambda row: row[2])


def classify_database(
    database: ColumnStore,
    *,
    exclude_addresses: Optional[Set[int]] = None,
) -> MisconfigReport:
    """Classify every record; ``exclude_addresses`` carries the fingerprinted
    honeypots (the paper filters them before counting Table 5)."""
    exclude = exclude_addresses or set()
    report = MisconfigReport(
        hosts_by_class={label: set() for label in MISCONFIG_PROTOCOL}
    )
    for row in database.iter_rows():
        if row.address in exclude:
            continue
        label = classify_record(row)
        if label != Misconfig.NONE:
            report.hosts_by_class[label].add(row.address)
    return report
