"""Country distribution of misconfigured devices — Table 10.

The paper geolocates misconfigured device addresses with ipgeolocation.io;
we do the same against the study's :class:`~repro.net.geo.GeoRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.core.columns import ColumnStore
from repro.net.geo import GeoRegistry

__all__ = ["CountryReport", "country_distribution", "country_distribution_of"]


@dataclass
class CountryReport:
    """Devices per country, with the percentage view Table 10 prints."""

    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """All geolocated devices."""
        return sum(self.counts.values())

    def rows(self, geo: GeoRegistry) -> List[Tuple[str, int, float]]:
        """(country name, count, percent) rows, descending by count."""
        total = self.total or 1
        rows = [
            (geo.country_name(code), count, 100.0 * count / total)
            for code, count in self.counts.items()
        ]
        return sorted(rows, key=lambda row: -row[1])

    def share(self, code: str) -> float:
        """Fraction of devices in one country."""
        total = self.total or 1
        return self.counts.get(code, 0) / total


def country_distribution(addresses: Iterable[int], geo: GeoRegistry) -> CountryReport:
    """Roll addresses up into a per-country report."""
    return CountryReport(counts=geo.histogram(addresses))


def country_distribution_of(
    database: ColumnStore, geo: GeoRegistry, *, misconfigured: bool = True
) -> CountryReport:
    """Table 10 straight from a scan database.

    Filters with the typed query API (``db.where(misconfigured=True)``)
    and geolocates the distinct responding addresses.
    """
    subset = database.where(misconfigured=misconfigured)
    return country_distribution(subset.unique_hosts(), geo)
