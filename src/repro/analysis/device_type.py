"""Device-type identification — Figure 2 and Table 11.

Device types are recovered by "matching specific text from the banners and
the response" (Section 4.1.2); the signature table is compiled from the
same identification material Table 11 publishes, and applied through the
generic ZTag engine.  The report aggregates the per-protocol type mix that
Figure 2 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.internet.devices import DEVICE_PROFILES, DeviceProfile
from repro.protocols.base import ProtocolId
from repro.core.columns import ColumnStore
from repro.scanner.records import ScanRecord
from repro.scanner.ztag import TagEngine, TagSignature

__all__ = ["build_device_signatures", "DeviceTypeReport", "identify_device_types"]

_NAMESPACE_TYPE = "device_type"
_NAMESPACE_MODEL = "device_model"


def _identifier_of(profile: DeviceProfile) -> Optional[str]:
    """The banner/response text that identifies this profile on the wire."""
    candidates = [
        profile.telnet_greeting,
        profile.upnp_friendly_name,
        profile.upnp_model_name,
        profile.upnp_model_description,
        profile.upnp_model_number,
        profile.upnp_manufacturer,
        profile.upnp_server,
        profile.coap_title,
    ]
    for text in candidates:
        if text:
            return text
    if profile.mqtt_topics:
        return profile.mqtt_topics[0].rsplit("/", 1)[0]
    if profile.coap_resources:
        return profile.coap_resources[0]
    return None


def build_device_signatures() -> List[TagSignature]:
    """Compile the Table 11 catalog into ZTag signatures.

    Generic profiles (the catch-all servers) are emitted last so specific
    device identifiers win; the XMPP/AMQP generics carry no signature at all
    — exactly the paper's observation that those responses are insufficient
    to label a device.
    """
    specific: List[TagSignature] = []
    generic: List[TagSignature] = []
    for profile in DEVICE_PROFILES:
        identifier = _identifier_of(profile)
        if identifier is None or profile.device_type == "Server":
            continue
        signature = TagSignature(
            needle=identifier,
            tags=(
                (_NAMESPACE_TYPE, profile.device_type),
                (_NAMESPACE_MODEL, profile.name),
            ),
            protocol=str(profile.protocol),
        )
        (generic if profile.name.startswith("Generic") else specific).append(
            signature
        )
    return specific + generic


@dataclass
class DeviceTypeReport:
    """Per-protocol device-type counts (Figure 2's data)."""

    counts: Dict[ProtocolId, Dict[str, int]] = field(default_factory=dict)
    identified: int = 0
    unidentified: int = 0

    def percentages(self, protocol: ProtocolId) -> Dict[str, float]:
        """Type mix of one protocol as percentages."""
        table = self.counts.get(protocol, {})
        total = sum(table.values())
        if total == 0:
            return {}
        return {name: 100.0 * count / total for name, count in table.items()}

    def top_types(self, protocol: ProtocolId, k: int = 5) -> List[Tuple[str, int]]:
        """The k most common device types on one protocol."""
        table = self.counts.get(protocol, {})
        return sorted(table.items(), key=lambda item: -item[1])[:k]


def identify_device_types(
    database: ColumnStore,
    *,
    engine: Optional[TagEngine] = None,
) -> DeviceTypeReport:
    """Tag every record and aggregate the Figure 2 mix."""
    engine = engine or TagEngine(build_device_signatures())
    report = DeviceTypeReport()
    # Dedup on (address, protocol) with one pass over the raw columns —
    # only first-seen rows pay for a row view and signature matching.
    seen: set = set()
    keys = zip(database.column("address"), database.column("protocol"))
    for index, key in enumerate(keys):
        if key in seen:
            continue
        seen.add(key)
        tagged = engine.tag_record(database.row(index))
        device_type = tagged.tag(_NAMESPACE_TYPE)
        if device_type is None:
            report.unidentified += 1
            continue
        report.identified += 1
        protocol_counts = report.counts.setdefault(key[1], {})
        protocol_counts[device_type] = protocol_counts.get(device_type, 0) + 1
    return report
