"""Attacks-from-infected-hosts analysis — Section 5.3's intersection.

The paper's headline cross-experiment result: of the 1.8 M misconfigured
devices found by the scan, **11,118** also appear as *attack sources*
against the honeypots and/or the network telescope (1,147 honeypots only,
1,274 telescope only, 8,697 both), every one flagged by at least one
VirusTotal vendor.  Censys's IoT labels identify **1,671** further infected
IoT devices among the remaining sources, and reverse DNS on the rest finds
797 registered domains (427 with webpages, 346 flagged malicious).

This module computes exactly that join, consuming only pipeline outputs:
the misconfiguration report's address set, the honeypot event log, the
telescope capture, and the intel stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.honeypots.events import EventLog
from repro.intel.censysiot import CensysIotDB
from repro.intel.virustotal import VirusTotalDB
from repro.net.rdns import ReverseDns
from repro.telescope.telescope import TelescopeCapture

__all__ = ["InfectedHostsReport", "analyze_infected_hosts"]


@dataclass
class InfectedHostsReport:
    """The §5.3 numbers as pipeline-measured values."""

    honeypot_only: Set[int] = field(default_factory=set)
    telescope_only: Set[int] = field(default_factory=set)
    both: Set[int] = field(default_factory=set)
    #: fraction of intersected devices VirusTotal flags (paper: all).
    virustotal_flagged_fraction: float = 0.0
    #: Censys-IoT extension: additional devices and their types.
    censys_extension: Dict[int, str] = field(default_factory=dict)
    censys_honeypot_only: int = 0
    censys_telescope_only: int = 0
    censys_both: int = 0
    #: reverse-DNS analysis of the remaining sources.
    registered_domains: Set[str] = field(default_factory=set)
    domains_with_webpage: Set[str] = field(default_factory=set)
    malicious_urls: Set[str] = field(default_factory=set)

    @property
    def total_infected_misconfigured(self) -> int:
        """The 11,118 analogue."""
        return len(self.honeypot_only) + len(self.telescope_only) + len(self.both)

    @property
    def total_censys_extension(self) -> int:
        """The 1,671 analogue."""
        return len(self.censys_extension)

    def top_censys_device_types(self, k: int = 3) -> List[Tuple[str, int]]:
        """Most common device types in the extension (paper: cameras,
        routers, IP phones)."""
        counts: Dict[str, int] = {}
        for device_type in self.censys_extension.values():
            counts[device_type] = counts.get(device_type, 0) + 1
        return sorted(counts.items(), key=lambda item: -item[1])[:k]


def analyze_infected_hosts(
    misconfigured_addresses: Set[int],
    log: EventLog,
    telescope: TelescopeCapture,
    virustotal: VirusTotalDB,
    censys: Optional[CensysIotDB] = None,
    rdns: Optional[ReverseDns] = None,
) -> InfectedHostsReport:
    """Intersect the misconfigured-device set with the attack sources."""
    honeypot_sources = log.unique_sources()
    telescope_sources = telescope.unique_sources()
    report = InfectedHostsReport()

    infected_hp = misconfigured_addresses & honeypot_sources
    infected_tel = misconfigured_addresses & telescope_sources
    report.both = infected_hp & infected_tel
    report.honeypot_only = infected_hp - report.both
    report.telescope_only = infected_tel - report.both

    intersected = report.honeypot_only | report.telescope_only | report.both
    if intersected:
        flagged = sum(
            1 for address in intersected if virustotal.is_malicious_ip(address)
        )
        report.virustotal_flagged_fraction = flagged / len(intersected)

    remaining = (honeypot_sources | telescope_sources) - intersected
    if censys is not None:
        for address, device_type in censys.iot_subset(remaining):
            report.censys_extension[address] = device_type
            in_hp = address in honeypot_sources
            in_tel = address in telescope_sources
            if in_hp and in_tel:
                report.censys_both += 1
            elif in_hp:
                report.censys_honeypot_only += 1
            else:
                report.censys_telescope_only += 1
        remaining = remaining - set(report.censys_extension)

    if rdns is not None:
        from repro.attacks.scanning_services import SCANNING_SERVICES

        scanning_suffixes = tuple(
            "." + service.rdns_domain for service in SCANNING_SERVICES
        )
        for address in remaining:
            domain = rdns.lookup(address)
            if domain is None:
                continue
            # Scanning services are benign infrastructure, not infected
            # hosts; §5.3's domain analysis targets the suspicious rest.
            if domain.endswith(scanning_suffixes):
                continue
            record = rdns.record(domain)
            if record is None:
                continue
            report.registered_domains.add(domain)
            if record.has_webpage:
                report.domains_with_webpage.add(domain)
            url = f"http://{domain}/"
            if virustotal.is_malicious_url(url):
                report.malicious_urls.add(url)
    return report
