"""Attack-origin case studies — the §5.1 source-tracing analyses.

Three analyses the paper runs on attack sources, reproduced over the event
log and the supporting registries:

* **DoS origin countries** (§5.1.3, §5.1.6): "the majority of the DoS
  attacks came from China, Russia, Israel, USA, and Italy" (HTTP) and
  "other sources of the DoS attacks appeared to originate from Italy,
  Taiwan, and Brazil" (CoAP) — a geo rollup of flood/reflection sources;
* **duplicate DNS entries** (§5.1.3): two CoAP flood sources resolved to
  the same domain, "which leads to the possibility of reflection or
  amplification attacks" — detected via the reverse-DNS store;
* **Tor-relay HTTP sources** (§5.1.6): 151 unique IPs behind the HTTP
  scraping traffic came from Tor relays, with "a daily recurring pattern".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.taxonomy import AttackType
from repro.core.columns import ColumnStore
from repro.intel.exonerator import ExoneraTorDB
from repro.net.geo import GeoRegistry
from repro.net.rdns import ReverseDns
from repro.protocols.base import ProtocolId

__all__ = [
    "dos_origin_countries",
    "duplicate_dns_sources",
    "TorAnalysis",
    "analyze_tor_sources",
]

_DOS_TYPES = (AttackType.DOS_FLOOD, AttackType.REFLECTION)


def dos_origin_countries(
    log: ColumnStore,
    geo: GeoRegistry,
    protocol: Optional[ProtocolId] = None,
    top_k: int = 5,
) -> List[Tuple[str, int]]:
    """Top origin countries of DoS-related attack sources.

    Returns (country name, distinct sources) pairs, descending — the §5.1
    "attacks came from ..." lists.
    """
    dos_events = (
        log.where(attack_type=_DOS_TYPES)
        if protocol is None
        else log.where(protocol=protocol, attack_type=_DOS_TYPES)
    )
    sources: Set[int] = set(dos_events.column("source"))
    histogram = geo.histogram(sources)
    ranked = sorted(histogram.items(), key=lambda item: -item[1])[:top_k]
    return [(geo.country_name(code), count) for code, count in ranked]


def duplicate_dns_sources(
    log: ColumnStore,
    rdns: ReverseDns,
    protocol: Optional[ProtocolId] = None,
) -> List[Set[int]]:
    """Groups of attack sources sharing one reverse-DNS domain.

    The paper's §5.1.3 tell for reflection infrastructure: distinct flood
    sources with duplicate DNS entries.
    """
    attack_sources = log.unique_sources(protocol=protocol)
    groups = []
    for group in rdns.duplicate_entry_addresses():
        overlap = group & attack_sources
        if len(overlap) >= 2:
            groups.append(overlap)
    return groups


@dataclass
class TorAnalysis:
    """The §5.1.6 Tor findings."""

    relay_sources: Set[int] = field(default_factory=set)
    #: sources active on ≥ threshold days (the "daily recurring pattern").
    recurring_relays: Set[int] = field(default_factory=set)
    #: events per day from relay sources (to check the increasing trend).
    daily_events: Dict[int, int] = field(default_factory=dict)

    @property
    def unique_relays(self) -> int:
        """Distinct Tor-relay sources (the paper's 151)."""
        return len(self.relay_sources)

    def trend_ratio(self) -> float:
        """Last-half vs first-half event volume (>1 = increasing)."""
        if not self.daily_events:
            return 0.0
        days = sorted(self.daily_events)
        midpoint = days[len(days) // 2]
        first = sum(count for day, count in self.daily_events.items()
                    if day < midpoint)
        second = sum(count for day, count in self.daily_events.items()
                     if day >= midpoint)
        return second / first if first else float(second > 0)


def analyze_tor_sources(
    log: ColumnStore,
    exonerator: ExoneraTorDB,
    *,
    protocol: ProtocolId = ProtocolId.HTTP,
    recurring_days: int = 3,
) -> TorAnalysis:
    """Cross the protocol's attack sources with the ExoneraTor records.

    Driven from the store's per-source grouping: one ExoneraTor lookup per
    source instead of per event, and the per-source day sets come straight
    from the grouped rows.
    """
    analysis = TorAnalysis()
    for source, events in log.where(protocol=protocol).group_by_source().items():
        if not exonerator.was_tor_relay(source):
            continue
        analysis.relay_sources.add(source)
        days: Set[int] = set()
        for event in events:
            day = event.day
            days.add(day)
            analysis.daily_events[day] = analysis.daily_events.get(day, 0) + 1
        if len(days) >= recurring_days:
            analysis.recurring_relays.add(source)
    return analysis
