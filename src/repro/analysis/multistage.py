"""Multistage-attack detection — Figure 9.

"We define multistage attacks as attacks in which there is a pattern of
multiple protocols that are being sequentially attacked by the same
adversary. ... we group the attacks from distinct source IP addresses and
check if multiple protocols are targeted", filtering sources "registered to
a domain affiliated to a scanning service" (Section 5.4).  Time between
stages is deliberately ignored, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.scanning_services import SCANNING_SERVICES
from repro.honeypots.events import EventLog
from repro.net.rdns import ReverseDns
from repro.protocols.base import ProtocolId

__all__ = ["MultistageReport", "detect_multistage"]


def _is_scanning_domain(domain: Optional[str]) -> bool:
    if not domain:
        return False
    return any(
        domain == service.rdns_domain or domain.endswith("." + service.rdns_domain)
        for service in SCANNING_SERVICES
    )


@dataclass
class MultistageReport:
    """Detected multistage attacks and their stage structure."""

    #: source → ordered distinct protocol sequence.
    sequences: Dict[int, Tuple[ProtocolId, ...]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Number of multistage attacks (the paper found 267)."""
        return len(self.sequences)

    def stage_counts(self) -> List[Dict[ProtocolId, int]]:
        """Per-stage protocol histogram (Figure 9's columns)."""
        if not self.sequences:
            return []
        depth = max(len(sequence) for sequence in self.sequences.values())
        stages: List[Dict[ProtocolId, int]] = [{} for _ in range(depth)]
        for sequence in self.sequences.values():
            for stage, protocol in enumerate(sequence):
                stages[stage][protocol] = stages[stage].get(protocol, 0) + 1
        return stages

    def starting_protocols(self) -> Dict[ProtocolId, int]:
        """Histogram of stage-one protocols (Telnet/SSH dominate)."""
        stages = self.stage_counts()
        return stages[0] if stages else {}


def detect_multistage(log: EventLog, rdns: ReverseDns) -> MultistageReport:
    """Find multi-protocol sources, excluding scanning-service domains."""
    report = MultistageReport()
    for source, events in log.multistage_candidates().items():
        if _is_scanning_domain(rdns.lookup(source)):
            continue
        sequence: List[ProtocolId] = []
        for event in events:  # already time-ordered
            if event.protocol not in sequence:
                sequence.append(event.protocol)
        if len(sequence) >= 2:
            report.sequences[source] = tuple(sequence)
    return report
